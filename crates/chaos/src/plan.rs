//! The [`ChaosPlan`]: a seeded description of how failpoints perturb the
//! schedule.

/// Deterministic 64-bit PRNG (SplitMix64).
///
/// A private copy: `citrus-chaos` sits below `citrus-api` in the crate
/// graph (the testkit builds on this crate), so it cannot reuse the
/// testkit's generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SplitMix64 {
    state: u64,
}

#[cfg_attr(not(feature = "chaos"), allow(dead_code))]
impl SplitMix64 {
    pub(crate) const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }
}

/// Finalizer of SplitMix64; also used to mix point names into rolls.
#[cfg_attr(not(feature = "chaos"), allow(dead_code))]
pub(crate) fn mix64(x: u64) -> u64 {
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic schedule-perturbation plan.
///
/// Installed with [`install`](crate::install), a plan makes every
/// [`point`](crate::point) roll (per thread, from a [`SplitMix64`] stream
/// derived from the plan seed and the thread's stream id) whether to pass
/// through, yield the OS scheduler, or spin-delay; every
/// [`should_fail`](crate::should_fail) rolls whether to force the calling
/// operation to restart. The same seed always produces the same decision
/// sequence on the same operation sequence, so a failing interleaving is
/// replayable from its seed alone.
///
/// Probabilities are in permille (`0..=1000`).
///
/// # Example
///
/// ```
/// use citrus_chaos::ChaosPlan;
///
/// let plan = ChaosPlan::from_seed(0xC17).yields(300).fails(0).traced(true);
/// assert_eq!(plan.seed(), 0xC17);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    pub(crate) seed: u64,
    pub(crate) yield_permille: u16,
    pub(crate) spin_permille: u16,
    pub(crate) fail_permille: u16,
    pub(crate) max_spin: u32,
    pub(crate) trace: bool,
}

impl ChaosPlan {
    /// A plan with default perturbation rates: 15% yields, 25% spin delays
    /// (up to 64 spin-loop hints), 5% forced restarts, tracing off.
    #[must_use]
    pub const fn from_seed(seed: u64) -> Self {
        Self {
            seed,
            yield_permille: 150,
            spin_permille: 250,
            fail_permille: 50,
            max_spin: 64,
            trace: false,
        }
    }

    /// Sets the probability (permille) that a failpoint yields the
    /// scheduler.
    #[must_use]
    pub const fn yields(mut self, permille: u16) -> Self {
        self.yield_permille = permille;
        self
    }

    /// Sets the probability (permille) that a failpoint spin-delays, and
    /// the maximum number of spin-loop hints per delay.
    #[must_use]
    pub const fn spins(mut self, permille: u16, max_spin: u32) -> Self {
        self.spin_permille = permille;
        self.max_spin = max_spin;
        self
    }

    /// Sets the probability (permille) that a
    /// [`should_fail`](crate::should_fail) site forces a restart.
    #[must_use]
    pub const fn fails(mut self, permille: u16) -> Self {
        self.fail_permille = permille;
        self
    }

    /// Enables or disables per-thread trace recording (see
    /// [`take_trace`](crate::take_trace)).
    #[must_use]
    pub const fn traced(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// The plan's seed — quote it in failure reports so the run replays.
    #[must_use]
    pub const fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(SplitMix64::new(7).next_u64(), SplitMix64::new(8).next_u64());
    }

    #[test]
    fn builder_sets_fields() {
        let p = ChaosPlan::from_seed(1)
            .yields(10)
            .spins(20, 5)
            .fails(30)
            .traced(true);
        assert_eq!(p.yield_permille, 10);
        assert_eq!(p.spin_permille, 20);
        assert_eq!(p.max_spin, 5);
        assert_eq!(p.fail_permille, 30);
        assert!(p.trace);
    }
}
