//! The failpoint registry: every [`point!`](crate::point!),
//! [`should_fail!`](crate::should_fail!), and [`blocked!`](crate::blocked!)
//! site self-registers its name the first time it is reached, and
//! [`all_points`] lists what has registered — so exploration sweeps and
//! coverage tests can assert that the yield points they rely on actually
//! exist and fire. A failpoint that is renamed, deleted, or compiled out
//! shows up as a missing registry entry instead of silently enumerating
//! fewer schedules.
//!
//! Registration is by-reach, not by-link: a site registers the first time
//! control passes it in a `chaos`-enabled build. With the `chaos` cargo
//! feature off the macros compile to the same no-op calls as the plain
//! functions and the registry stays empty.

/// What a registered failpoint site does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PointKind {
    /// A [`point!`](crate::point!) site: a plain schedule-perturbation /
    /// cooperative-yield point.
    Yield,
    /// A [`should_fail!`](crate::should_fail!) site: may force the calling
    /// operation to restart (never forced under a schedule plan).
    Fail,
    /// A [`blocked!`](crate::blocked!) site: the calling thread cannot make
    /// progress until another thread acts (spin-lock waits, grace-period
    /// waits). Under a schedule plan the thread is descheduled until a
    /// [`wake_hint`](crate::wake_hint) arrives.
    Block,
}

/// One `point!`/`should_fail!`/`blocked!` call site's static identity.
///
/// The macros expand to a `static PointSite` per call site; the first
/// firing registers the name into the global registry (see [`all_points`]).
pub struct PointSite {
    name: &'static str,
    kind: PointKind,
    #[cfg(feature = "chaos")]
    registered: core::sync::atomic::AtomicBool,
}

impl PointSite {
    /// Creates a site (used by the failpoint macros; one static per site).
    #[must_use]
    pub const fn new(name: &'static str, kind: PointKind) -> Self {
        Self {
            name,
            kind,
            #[cfg(feature = "chaos")]
            registered: core::sync::atomic::AtomicBool::new(false),
        }
    }

    /// The site's failpoint name (`component/operation/site`).
    #[must_use]
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// The site's kind.
    #[must_use]
    pub const fn kind(&self) -> PointKind {
        self.kind
    }
}

impl core::fmt::Debug for PointSite {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PointSite")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .finish()
    }
}

/// A registry entry: a failpoint site that has been reached at least once
/// in this process (in a `chaos`-enabled build).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct RegisteredPoint {
    /// The failpoint name (`component/operation/site`).
    pub name: &'static str,
    /// What the site does when it fires.
    pub kind: PointKind,
}

#[cfg(feature = "chaos")]
mod imp {
    use super::{PointKind, PointSite, RegisteredPoint};
    use core::sync::atomic::Ordering;
    use std::collections::BTreeMap;
    use std::sync::{Mutex, PoisonError};

    static REGISTRY: Mutex<BTreeMap<&'static str, PointKind>> = Mutex::new(BTreeMap::new());

    fn register(site: &'static PointSite) {
        // Relaxed is fine: a racy duplicate insert is idempotent, and the
        // flag only short-circuits the common already-registered case.
        if !site.registered.load(Ordering::Relaxed) {
            REGISTRY
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(site.name(), site.kind());
            site.registered.store(true, Ordering::Relaxed);
        }
    }

    /// Every failpoint site reached so far, sorted by name.
    #[must_use]
    pub fn all_points() -> Vec<RegisteredPoint> {
        REGISTRY
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(&name, &kind)| RegisteredPoint { name, kind })
            .collect()
    }

    /// Fires a registered [`point!`](crate::point!) site.
    #[inline]
    pub fn fire_point(site: &'static PointSite) {
        register(site);
        crate::point(site.name());
    }

    /// Fires a registered [`should_fail!`](crate::should_fail!) site.
    #[inline]
    #[must_use]
    pub fn fire_should_fail(site: &'static PointSite) -> bool {
        register(site);
        crate::should_fail(site.name())
    }

    /// Fires a registered [`blocked!`](crate::blocked!) site: under an
    /// active schedule the calling thread is descheduled until a
    /// [`wake_hint`](crate::wake_hint); otherwise it degrades to a plain
    /// chaos roll and the caller's own spin loop provides the waiting.
    #[inline]
    pub fn fire_blocked(site: &'static PointSite) {
        register(site);
        if !crate::sched::block_current(site.name()) {
            crate::point(site.name());
        }
    }
}

#[cfg(not(feature = "chaos"))]
mod imp {
    use super::{PointSite, RegisteredPoint};

    /// Always empty in this build (failpoints are compiled out).
    #[inline]
    #[must_use]
    pub fn all_points() -> Vec<RegisteredPoint> {
        Vec::new()
    }

    /// No-op in this build.
    #[inline(always)]
    pub fn fire_point(site: &'static PointSite) {
        let _ = site;
    }

    /// Always `false` in this build.
    #[inline(always)]
    #[must_use]
    pub fn fire_should_fail(site: &'static PointSite) -> bool {
        let _ = site;
        false
    }

    /// No-op in this build.
    #[inline(always)]
    pub fn fire_blocked(site: &'static PointSite) {
        let _ = site;
    }
}

pub use imp::{all_points, fire_blocked, fire_point, fire_should_fail};

/// A named schedule-perturbation failpoint that self-registers into the
/// failpoint registry (see [`all_points`]) on first reach.
///
/// Equivalent to [`point`](crate::point) plus registration; instrumented
/// crates should prefer this macro so coverage checks see their sites.
#[macro_export]
macro_rules! point {
    ($name:literal) => {{
        static __CITRUS_CHAOS_SITE: $crate::PointSite =
            $crate::PointSite::new($name, $crate::PointKind::Yield);
        $crate::fire_point(&__CITRUS_CHAOS_SITE)
    }};
}

/// A named forced-restart failpoint that self-registers into the failpoint
/// registry on first reach. Evaluates to `bool` like
/// [`should_fail`](crate::should_fail); under an active [`SchedulePlan`]
/// (see [`run_schedule`](crate::run_schedule)) it acts as a cooperative
/// yield point and always returns `false`.
#[macro_export]
macro_rules! should_fail {
    ($name:literal) => {{
        static __CITRUS_CHAOS_SITE: $crate::PointSite =
            $crate::PointSite::new($name, $crate::PointKind::Fail);
        $crate::fire_should_fail(&__CITRUS_CHAOS_SITE)
    }};
}

/// A named *blocking* yield point, for spin-wait loops whose progress
/// depends on another thread (lock acquisition, grace-period waits,
/// drain loops). Place it inside the wait loop, before the backoff:
///
/// ```ignore
/// while lock_is_held() {
///     citrus_chaos::blocked!("component/operation/wait");
///     backoff.snooze();
/// }
/// ```
///
/// Under an active schedule the calling thread is descheduled until some
/// thread calls [`wake_hint`](crate::wake_hint) (placed at every release
/// site); without a schedule it degrades to a plain chaos roll.
#[macro_export]
macro_rules! blocked {
    ($name:literal) => {{
        static __CITRUS_CHAOS_SITE: $crate::PointSite =
            $crate::PointSite::new($name, $crate::PointKind::Block);
        $crate::fire_blocked(&__CITRUS_CHAOS_SITE)
    }};
}
