//! Scheduler + explorer semantics on toy scenarios (no tree involved):
//! determinism, blocking/wake, deadlock detection, coverage via the
//! registry, and a planted lost-update race that the explorer must find
//! at preemption bound 1 but not at bound 0.
#![cfg(feature = "chaos")]

use chaos::{ExploreConfig, ExploredRun, Explorer, SchedulePlan};
use citrus_chaos as chaos;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

fn run2<A, B>(plan: &SchedulePlan, a: A, b: B) -> chaos::ScheduleOutcome
where
    A: FnOnce() + Send,
    B: FnOnce() + Send,
{
    chaos::run_schedule(plan, vec![Box::new(a), Box::new(b)])
}

#[test]
fn encode_decode_round_trip() {
    let plan = SchedulePlan::new(vec![0, 1, 35, 9]);
    assert_eq!(plan.encode(), "01z9");
    assert_eq!(SchedulePlan::decode("01z9").unwrap(), plan);
    assert_eq!(SchedulePlan::decode("-").unwrap().decisions(), &[]);
    assert_eq!(SchedulePlan::decode("").unwrap().decisions(), &[]);
    assert!(SchedulePlan::decode("0!1").is_err());
}

#[test]
fn single_thread_runs_to_completion_without_branches() {
    let counter = AtomicU64::new(0);
    let outcome = chaos::run_schedule(
        &SchedulePlan::new(vec![]),
        vec![Box::new(|| {
            for _ in 0..3 {
                chaos::point!("toy/single/step");
                counter.fetch_add(1, Ordering::Relaxed);
            }
        })],
    );
    assert!(outcome.clean(), "{outcome:?}");
    assert_eq!(counter.load(Ordering::Relaxed), 3);
    assert!(outcome.branches.is_empty(), "one thread can never branch");
    assert_eq!(outcome.steps, 3);
}

#[test]
fn same_plan_same_run() {
    let run = |plan: &SchedulePlan| {
        let log: std::sync::Mutex<Vec<(u8, u64)>> = std::sync::Mutex::new(Vec::new());
        let x = AtomicU64::new(0);
        let outcome = run2(
            plan,
            || {
                for _ in 0..2 {
                    chaos::point!("toy/det/a");
                    let v = x.fetch_add(1, Ordering::Relaxed);
                    log.lock().unwrap().push((0, v));
                }
            },
            || {
                for _ in 0..2 {
                    chaos::point!("toy/det/b");
                    let v = x.fetch_add(1, Ordering::Relaxed);
                    log.lock().unwrap().push((1, v));
                }
            },
        );
        (outcome.branches, outcome.trace, log.into_inner().unwrap())
    };
    let plan = SchedulePlan::decode("101").unwrap();
    assert_eq!(run(&plan), run(&plan), "same plan must replay identically");
}

#[test]
fn default_policy_adds_zero_preemptions() {
    let outcome = run2(
        &SchedulePlan::new(vec![]),
        || {
            for _ in 0..3 {
                chaos::point!("toy/default/a");
            }
        },
        || {
            for _ in 0..3 {
                chaos::point!("toy/default/b");
            }
        },
    );
    assert!(outcome.clean(), "{outcome:?}");
    assert_eq!(
        outcome.preemptions, 0,
        "continue-current/lowest-id default must never preempt"
    );
}

#[test]
fn blocked_thread_wakes_on_hint() {
    // Thread 0 waits for a flag that only thread 1 sets: every schedule
    // must complete (the scheduler may not strand the waiter), and under
    // the empty plan thread 0 runs first, so the wait is actually taken.
    let explorer = Explorer::with_bound(2);
    let report = explorer.explore(|plan| {
        let flag = AtomicBool::new(false);
        let outcome = run2(
            plan,
            || {
                while !flag.load(Ordering::Acquire) {
                    chaos::blocked!("toy/wait/flag");
                    std::hint::spin_loop();
                }
            },
            || {
                chaos::point!("toy/wait/before-set");
                flag.store(true, Ordering::Release);
                chaos::wake_hint();
            },
        );
        ExploredRun {
            verdict: if outcome.clean() {
                Ok(())
            } else {
                Err(format!("{outcome:?}"))
            },
            outcome,
        }
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.completed);
    assert_eq!(report.deadlocks, 0);
    assert!(report.points_hit.contains("toy/wait/flag"));
}

#[test]
fn all_blocked_is_reported_as_deadlock() {
    let flag = AtomicBool::new(false);
    let outcome = chaos::run_schedule(
        &SchedulePlan::new(vec![]),
        vec![Box::new(|| {
            while !flag.load(Ordering::Acquire) {
                chaos::blocked!("toy/deadlock/flag");
                std::hint::spin_loop();
            }
        })],
    );
    assert!(outcome.deadlocked, "{outcome:?}");
    assert!(!outcome.clean());
    assert!(outcome.failure_reason().unwrap().contains("deadlock"));
}

#[test]
fn stale_decision_is_reported_not_panicked() {
    // Decision 5 can never be eligible in a 2-thread run.
    let outcome = run2(
        &SchedulePlan::decode("5").unwrap(),
        || chaos::point!("toy/stale/a"),
        || chaos::point!("toy/stale/b"),
    );
    assert!(outcome.stale, "{outcome:?}");
}

#[test]
fn step_budget_aborts_livelock() {
    let outcome = chaos::run_schedule(
        &SchedulePlan::new(vec![]).with_max_steps(100),
        vec![Box::new(|| loop {
            chaos::point!("toy/livelock/spin");
        })],
    );
    assert!(outcome.step_limit_hit, "{outcome:?}");
}

#[test]
fn scenario_panics_are_findings_not_crashes() {
    let outcome = run2(
        &SchedulePlan::new(vec![]),
        || chaos::point!("toy/panic/a"),
        || panic!("planted scenario panic"),
    );
    assert_eq!(outcome.panics.len(), 1);
    assert!(outcome.panics[0].contains("planted scenario panic"));
    assert!(outcome.failure_reason().unwrap().contains("planted"));
}

#[test]
fn registry_sees_fired_sites() {
    chaos::point!("toy/registry/probe");
    let _ = chaos::should_fail!("toy/registry/fail-probe");
    let points = chaos::all_points();
    let find = |n: &str| points.iter().find(|p| p.name == n).copied();
    assert_eq!(
        find("toy/registry/probe").map(|p| p.kind),
        Some(chaos::PointKind::Yield)
    );
    assert_eq!(
        find("toy/registry/fail-probe").map(|p| p.kind),
        Some(chaos::PointKind::Fail)
    );
}

#[test]
fn mutant_guard_enables_and_disables() {
    assert!(!chaos::mutant_enabled("toy/mutant/x"));
    {
        let _g = chaos::enable_mutant("toy/mutant/x");
        assert!(chaos::mutant_enabled("toy/mutant/x"));
        assert!(!chaos::mutant_enabled("toy/mutant/y"));
    }
    assert!(!chaos::mutant_enabled("toy/mutant/x"));
}

/// The classic lost update: both threads read-modify-write a counter
/// with a yield point between the read and the write. Sequential (and
/// any zero-preemption) schedules end at 2; only a mid-RMW preemption
/// loses an update. The explorer must miss it at bound 0 and find it at
/// bound 1, with a schedule that replays to the same verdict.
#[test]
fn explorer_finds_lost_update_at_bound_one() {
    let run_once = |plan: &SchedulePlan| {
        let x = AtomicU64::new(0);
        let rmw = || {
            let v = x.load(Ordering::SeqCst);
            chaos::point!("toy/race/mid-rmw");
            x.store(v + 1, Ordering::SeqCst);
        };
        let outcome = run2(plan, rmw, rmw);
        let finl = x.load(Ordering::SeqCst);
        ExploredRun {
            verdict: if !outcome.clean() {
                Err(format!("{outcome:?}"))
            } else if finl == 2 {
                Ok(())
            } else {
                Err(format!("lost update: final={finl}"))
            },
            outcome,
        }
    };

    let bound0 = Explorer::with_bound(0).explore(run_once);
    assert!(
        bound0.failure.is_none(),
        "no lost update without preemption: {:?}",
        bound0.failure
    );
    assert!(bound0.completed);

    let bound1 = Explorer::with_bound(1).explore(run_once);
    let failure = bound1.failure.expect("bound 1 must expose the lost update");
    assert!(failure.reason.contains("lost update"), "{failure}");
    assert_eq!(
        failure.preemptions, 1,
        "minimal schedule uses one preemption"
    );

    // The reported schedule replays deterministically to the same verdict.
    let replay = run_once(&SchedulePlan::decode(&failure.schedule).unwrap());
    assert!(replay.verdict.is_err(), "replay must reproduce the failure");
}

/// For a fixed scenario and bound the number of distinct schedules is a
/// deterministic property of the failpoint graph; a second sweep must
/// agree exactly. (The tree-level sweeps additionally pin the absolute
/// counts — see crates/core/tests/explore_windows.rs.)
#[test]
fn sweep_counts_are_stable() {
    let sweep = || {
        let explorer = Explorer::new(ExploreConfig {
            max_preemptions: 2,
            stop_on_failure: false,
            ..ExploreConfig::default()
        });
        explorer.explore(|plan| {
            let x = AtomicU64::new(0);
            let body = || {
                for _ in 0..2 {
                    chaos::point!("toy/stable/step");
                    x.fetch_add(1, Ordering::Relaxed);
                }
            };
            let outcome = run2(plan, body, body);
            ExploredRun {
                verdict: if outcome.clean() {
                    Ok(())
                } else {
                    Err(format!("{outcome:?}"))
                },
                outcome,
            }
        })
    };
    let (a, b) = (sweep(), sweep());
    assert!(a.completed && b.completed);
    assert!(a.failure.is_none());
    assert_eq!(
        a.schedules, b.schedules,
        "enumeration must be deterministic"
    );
    assert!(a.schedules > 1, "2×2-step scenario has real branching");
}
