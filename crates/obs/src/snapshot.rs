//! Point-in-time snapshots of registered metrics, with text-table and CSV
//! rendering.

use std::fmt;

/// A frozen copy of a [`Log2Histogram`](crate::Log2Histogram).
///
/// `buckets[k]` counts values whose bit length is `k`: bucket 0 holds
/// zeros, bucket `k > 0` holds values in `[2^(k-1), 2^k)`.
///
/// # Example
///
/// ```
/// use citrus_obs::Log2Histogram;
///
/// let h = Log2Histogram::new();
/// h.record(7);
/// let snap = h.snapshot();
/// #[cfg(feature = "stats")]
/// assert_eq!(snap.mean(), 7.0);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (wrapping on overflow).
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Per-bit-length bucket counts (65 entries when stats are on; empty
    /// for a no-op histogram).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// An empty snapshot (what a no-op histogram returns).
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// Arithmetic mean of recorded values, or `0.0` if none.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the smallest bucket whose cumulative count reaches
    /// quantile `q` (in `[0, 1]`), or `0` if the histogram is empty. A
    /// coarse (power-of-two resolution) but allocation-free percentile.
    #[must_use]
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (k, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target.max(1) {
                // Bucket k holds values < 2^k (k == 0 holds only zeros).
                return if k == 0 {
                    0
                } else {
                    1u64.checked_shl(k as u32).map_or(u64::MAX, |b| b - 1)
                };
            }
        }
        self.max
    }

    /// Median upper bound: `quantile_upper_bound(0.50)`.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile_upper_bound(0.50)
    }

    /// 99th-percentile upper bound: `quantile_upper_bound(0.99)`.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile_upper_bound(0.99)
    }

    /// 99.9th-percentile upper bound: `quantile_upper_bound(0.999)`.
    #[must_use]
    pub fn p999(&self) -> u64 {
        self.quantile_upper_bound(0.999)
    }
}

/// The value carried by one [`MetricEntry`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// A monotone event count.
    Count(u64),
    /// A monotone maximum gauge.
    Maximum(u64),
    /// A value distribution.
    Histogram(HistogramSnapshot),
}

/// One named metric inside a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricEntry {
    /// The component that registered the metric (e.g. `"rcu/scalable"`).
    pub component: String,
    /// The metric name within the component (e.g. `"synchronize_ns"`).
    pub name: String,
    /// The frozen value.
    pub value: MetricValue,
}

/// A point-in-time copy of every metric in a
/// [`MetricsRegistry`](crate::MetricsRegistry).
///
/// Always a real (non-gated) type so downstream code — reports, CSV
/// emission, invariant checks — compiles identically with stats off; it is
/// simply empty in that mode.
///
/// # Example
///
/// ```
/// use citrus_obs::{Counter, MetricsRegistry};
///
/// let registry = MetricsRegistry::new();
/// let c = Counter::new(1);
/// registry.register_counter("tree", "restarts", &c);
/// c.add(0, 3);
/// let snap = registry.snapshot();
/// #[cfg(feature = "stats")]
/// assert_eq!(snap.counter("tree", "restarts"), Some(3));
/// #[cfg(not(feature = "stats"))]
/// assert!(snap.is_empty());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// All entries, in registration order.
    pub entries: Vec<MetricEntry>,
}

impl MetricsSnapshot {
    /// `true` when no metrics were captured (always the case with stats
    /// off).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a [`MetricValue::Count`] by component and name.
    #[must_use]
    pub fn counter(&self, component: &str, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|e| match &e.value {
            MetricValue::Count(n) if e.component == component && e.name == name => Some(*n),
            _ => None,
        })
    }

    /// Looks up a [`MetricValue::Maximum`] by component and name.
    #[must_use]
    pub fn maximum(&self, component: &str, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|e| match &e.value {
            MetricValue::Maximum(n) if e.component == component && e.name == name => Some(*n),
            _ => None,
        })
    }

    /// Looks up a [`MetricValue::Histogram`] by component and name.
    #[must_use]
    pub fn histogram(&self, component: &str, name: &str) -> Option<&HistogramSnapshot> {
        self.entries.iter().find_map(|e| match &e.value {
            MetricValue::Histogram(h) if e.component == component && e.name == name => Some(h),
            _ => None,
        })
    }

    /// Renders the snapshot as CSV with header
    /// `component,metric,kind,count,sum,mean,max,p50,p99`.
    ///
    /// Counters and maxima fill only the columns that apply; histogram
    /// rows carry the full distribution summary.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("component,metric,kind,count,sum,mean,max,p50,p99\n");
        for e in &self.entries {
            match &e.value {
                MetricValue::Count(n) => {
                    out.push_str(&format!("{},{},counter,{n},{n},,,,\n", e.component, e.name));
                }
                MetricValue::Maximum(n) => {
                    out.push_str(&format!("{},{},maximum,,,,{n},,\n", e.component, e.name));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{},{},histogram,{},{},{:.1},{},{},{}\n",
                        e.component,
                        e.name,
                        h.count,
                        h.sum,
                        h.mean(),
                        h.max,
                        h.quantile_upper_bound(0.50),
                        h.quantile_upper_bound(0.99),
                    ));
                }
            }
        }
        out
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.entries.is_empty() {
            return writeln!(f, "(no metrics collected — built without `stats`)");
        }
        let comp_w = self
            .entries
            .iter()
            .map(|e| e.component.chars().count())
            .chain(std::iter::once("component".len()))
            .max()
            .unwrap_or(0);
        writeln!(
            f,
            "{:<comp_w$} {:<24} {:>12} {:>14} {:>10} {:>10}",
            "component", "metric", "count", "sum/max", "mean", "p99"
        )?;
        for e in &self.entries {
            match &e.value {
                MetricValue::Count(n) => writeln!(
                    f,
                    "{:<comp_w$} {:<24} {:>12} {:>14} {:>10} {:>10}",
                    e.component, e.name, n, "-", "-", "-"
                )?,
                MetricValue::Maximum(n) => writeln!(
                    f,
                    "{:<comp_w$} {:<24} {:>12} {:>14} {:>10} {:>10}",
                    e.component, e.name, "-", n, "-", "-"
                )?,
                MetricValue::Histogram(h) => writeln!(
                    f,
                    "{:<comp_w$} {:<24} {:>12} {:>14} {:>10.0} {:>10}",
                    e.component,
                    e.name,
                    h.count,
                    h.max,
                    h.mean(),
                    h.quantile_upper_bound(0.99),
                )?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let mut hist = HistogramSnapshot {
            count: 3,
            sum: 7,
            max: 4,
            buckets: vec![0; 65],
        };
        hist.buckets[1] = 2; // two 1s
        hist.buckets[3] = 1; // one value in [4, 8)
        MetricsSnapshot {
            entries: vec![
                MetricEntry {
                    component: "rcu/scalable".into(),
                    name: "synchronize_calls".into(),
                    value: MetricValue::Count(42),
                },
                MetricEntry {
                    component: "reclaim".into(),
                    name: "limbo_depth_hwm".into(),
                    value: MetricValue::Maximum(9),
                },
                MetricEntry {
                    component: "rcu/scalable".into(),
                    name: "synchronize_ns".into(),
                    value: MetricValue::Histogram(hist),
                },
            ],
        }
    }

    #[test]
    fn lookups_find_by_kind_and_name() {
        let s = sample();
        assert_eq!(s.counter("rcu/scalable", "synchronize_calls"), Some(42));
        assert_eq!(s.counter("rcu/scalable", "synchronize_ns"), None); // wrong kind
        assert_eq!(s.maximum("reclaim", "limbo_depth_hwm"), Some(9));
        assert_eq!(
            s.histogram("rcu/scalable", "synchronize_ns").unwrap().count,
            3
        );
        assert!(!s.is_empty());
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let s = sample();
        let h = s.histogram("rcu/scalable", "synchronize_ns").unwrap();
        // p50 lands in bucket 1 (values < 2), p99 in bucket 3 (values < 8).
        assert_eq!(h.quantile_upper_bound(0.50), 1);
        assert_eq!(h.quantile_upper_bound(0.99), 7);
        assert_eq!(h.p50(), 1);
        assert_eq!(h.p99(), 7);
        assert_eq!(h.p999(), 7);
        assert_eq!(h.mean(), 7.0 / 3.0);
        assert_eq!(HistogramSnapshot::empty().quantile_upper_bound(0.99), 0);
    }

    #[test]
    fn csv_has_header_and_one_row_per_entry() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "component,metric,kind,count,sum,mean,max,p50,p99");
        assert!(lines[1].starts_with("rcu/scalable,synchronize_calls,counter,42"));
        assert!(lines[2].starts_with("reclaim,limbo_depth_hwm,maximum"));
        assert!(lines[3].starts_with("rcu/scalable,synchronize_ns,histogram,3,7,2.3,4,1,7"));
    }

    #[test]
    fn display_renders_every_entry() {
        let text = sample().to_string();
        assert!(text.contains("synchronize_calls"));
        assert!(text.contains("limbo_depth_hwm"));
        assert!(text.contains("synchronize_ns"));
        let empty = MetricsSnapshot::default().to_string();
        assert!(empty.contains("no metrics collected"));
    }
}
