//! The instrument types: counters, histograms, high-water marks, and the
//! feature-gated stopwatch.
//!
//! Each type is a cheap cloneable handle (an `Arc` around shared state)
//! when the `stats` feature is on, and a zero-sized no-op otherwise. All
//! hot-path methods are `#[inline]` so the no-op variants vanish entirely.

#[cfg(feature = "stats")]
use citrus_sync::StripedCounter;
#[cfg(feature = "stats")]
use core::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "stats")]
use std::sync::Arc;

use crate::snapshot::HistogramSnapshot;

/// Number of buckets in a [`Log2Histogram`]: one per possible bit length
/// of a `u64` value, plus one for zero.
#[cfg(feature = "stats")]
pub(crate) const HISTOGRAM_BUCKETS: usize = 65;

/// A striped event counter; see [`citrus_sync::StripedCounter`].
///
/// Hot-path increments go to `slot % stripes`, so callers pass a cheap
/// per-thread slot id and never contend. With the `stats` feature off this
/// is a zero-sized no-op.
///
/// # Example
///
/// ```
/// use citrus_obs::Counter;
///
/// let c = Counter::new(4);
/// c.incr(0);
/// c.add(3, 9);
/// #[cfg(feature = "stats")]
/// assert_eq!(c.get(), 10);
/// #[cfg(not(feature = "stats"))]
/// assert_eq!(c.get(), 0); // no-op build: nothing is recorded
/// ```
#[derive(Clone, Debug, Default)]
pub struct Counter {
    #[cfg(feature = "stats")]
    inner: Option<Arc<StripedCounter>>,
}

impl Counter {
    /// Creates a counter with `stripes` cells (clamped to at least one).
    #[must_use]
    pub fn new(stripes: usize) -> Self {
        #[cfg(feature = "stats")]
        {
            Self {
                inner: Some(Arc::new(StripedCounter::new(stripes.max(1)))),
            }
        }
        #[cfg(not(feature = "stats"))]
        {
            let _ = stripes;
            Self {}
        }
    }

    /// Adds `n` to stripe `slot % stripes`.
    #[inline]
    pub fn add(&self, slot: usize, n: u64) {
        #[cfg(feature = "stats")]
        if let Some(c) = &self.inner {
            c.add(slot, n);
        }
        #[cfg(not(feature = "stats"))]
        {
            let _ = (slot, n);
        }
    }

    /// Increments stripe `slot % stripes` by one.
    #[inline]
    pub fn incr(&self, slot: usize) {
        self.add(slot, 1);
    }

    /// Current total (sum over stripes); always `0` with stats off.
    #[must_use]
    pub fn get(&self) -> u64 {
        #[cfg(feature = "stats")]
        {
            self.inner.as_ref().map_or(0, |c| c.sum())
        }
        #[cfg(not(feature = "stats"))]
        {
            0
        }
    }
}

/// A fixed-bucket power-of-two histogram.
///
/// Values land in bucket `bit_length(value)` (bucket 0 holds zeros, bucket
/// `k` holds `[2^(k-1), 2^k)`), so the 65 buckets cover all of `u64` with
/// one branch-free index computation. Primarily used for latencies in
/// nanoseconds; also for per-event counts. With the `stats` feature off
/// this is a zero-sized no-op.
///
/// # Example
///
/// ```
/// use citrus_obs::Log2Histogram;
///
/// let h = Log2Histogram::new();
/// h.record(800);   // bucket [512, 1024)
/// h.record(1100);  // bucket [1024, 2048)
/// let snap = h.snapshot();
/// #[cfg(feature = "stats")]
/// assert_eq!(snap.count, 2);
/// #[cfg(not(feature = "stats"))]
/// assert_eq!(snap.count, 0); // no-op build: nothing is recorded
/// ```
#[derive(Clone, Debug, Default)]
pub struct Log2Histogram {
    #[cfg(feature = "stats")]
    inner: Option<Arc<HistogramInner>>,
}

#[cfg(feature = "stats")]
#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

#[cfg(feature = "stats")]
impl HistogramInner {
    fn new() -> Self {
        Self {
            buckets: core::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        #[cfg(feature = "stats")]
        {
            Self {
                inner: Some(Arc::new(HistogramInner::new())),
            }
        }
        #[cfg(not(feature = "stats"))]
        {
            Self {}
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, value: u64) {
        #[cfg(feature = "stats")]
        if let Some(h) = &self.inner {
            let bucket = (u64::BITS - value.leading_zeros()) as usize;
            h.buckets[bucket].fetch_add(1, Ordering::Relaxed);
            h.count.fetch_add(1, Ordering::Relaxed);
            h.sum.fetch_add(value, Ordering::Relaxed);
            h.max.fetch_max(value, Ordering::Relaxed);
        }
        #[cfg(not(feature = "stats"))]
        {
            let _ = value;
        }
    }

    /// A point-in-time copy of the histogram (empty with stats off).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        #[cfg(feature = "stats")]
        {
            if let Some(h) = &self.inner {
                return HistogramSnapshot {
                    count: h.count.load(Ordering::Relaxed),
                    sum: h.sum.load(Ordering::Relaxed),
                    max: h.max.load(Ordering::Relaxed),
                    buckets: h
                        .buckets
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect(),
                };
            }
        }
        HistogramSnapshot::empty()
    }
}

/// A monotone maximum gauge (e.g. deepest limbo bag ever observed).
///
/// With the `stats` feature off this is a zero-sized no-op.
///
/// # Example
///
/// ```
/// use citrus_obs::HighWaterMark;
///
/// let hwm = HighWaterMark::new();
/// hwm.observe(3);
/// hwm.observe(17);
/// hwm.observe(5);
/// #[cfg(feature = "stats")]
/// assert_eq!(hwm.get(), 17);
/// #[cfg(not(feature = "stats"))]
/// assert_eq!(hwm.get(), 0); // no-op build: nothing is recorded
/// ```
#[derive(Clone, Debug, Default)]
pub struct HighWaterMark {
    #[cfg(feature = "stats")]
    inner: Option<Arc<AtomicU64>>,
}

impl HighWaterMark {
    /// Creates a mark at zero.
    #[must_use]
    pub fn new() -> Self {
        #[cfg(feature = "stats")]
        {
            Self {
                inner: Some(Arc::new(AtomicU64::new(0))),
            }
        }
        #[cfg(not(feature = "stats"))]
        {
            Self {}
        }
    }

    /// Raises the mark to `value` if it is higher than the current mark.
    #[inline]
    pub fn observe(&self, value: u64) {
        #[cfg(feature = "stats")]
        if let Some(m) = &self.inner {
            m.fetch_max(value, Ordering::Relaxed);
        }
        #[cfg(not(feature = "stats"))]
        {
            let _ = value;
        }
    }

    /// The highest value observed; always `0` with stats off.
    #[must_use]
    pub fn get(&self) -> u64 {
        #[cfg(feature = "stats")]
        {
            self.inner.as_ref().map_or(0, |m| m.load(Ordering::Relaxed))
        }
        #[cfg(not(feature = "stats"))]
        {
            0
        }
    }
}

/// A wall-clock timer that compiles away with stats off.
///
/// Use it around code whose latency feeds a [`Log2Histogram`]: with the
/// `stats` feature off, no clock is read.
///
/// # Example
///
/// ```
/// use citrus_obs::{Log2Histogram, Stopwatch};
///
/// let h = Log2Histogram::new();
/// let sw = Stopwatch::start();
/// // ... the operation being measured ...
/// h.record(sw.elapsed_ns());
/// # let _ = h.snapshot();
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    #[cfg(feature = "stats")]
    start: std::time::Instant,
}

impl Stopwatch {
    /// Starts timing (a no-op with stats off).
    #[inline]
    #[must_use]
    pub fn start() -> Self {
        #[cfg(feature = "stats")]
        {
            Self {
                start: std::time::Instant::now(),
            }
        }
        #[cfg(not(feature = "stats"))]
        {
            Self {}
        }
    }

    /// Nanoseconds since [`start`](Self::start), saturated to `u64`;
    /// always `0` with stats off.
    #[inline]
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        #[cfg(feature = "stats")]
        {
            u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
        }
        #[cfg(not(feature = "stats"))]
        {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    #[cfg(not(feature = "stats"))]
    use super::*;

    /// The zero-cost-when-off contract, checked at compile scope: with the
    /// `stats` feature off every instrument must be zero-sized (it cannot
    /// contain an atomic, a pointer, or anything else).
    #[cfg(not(feature = "stats"))]
    #[test]
    fn noop_instruments_are_zero_sized() {
        assert_eq!(core::mem::size_of::<Counter>(), 0);
        assert_eq!(core::mem::size_of::<Log2Histogram>(), 0);
        assert_eq!(core::mem::size_of::<HighWaterMark>(), 0);
        assert_eq!(core::mem::size_of::<Stopwatch>(), 0);
        assert_eq!(core::mem::size_of::<crate::MetricsRegistry>(), 0);
        // And the no-op paths record nothing.
        let c = Counter::new(8);
        c.add(0, 5);
        assert_eq!(c.get(), 0);
        let h = Log2Histogram::new();
        h.record(123);
        assert_eq!(h.snapshot().count, 0);
    }

    #[cfg(feature = "stats")]
    mod stats_on {
        use super::super::*;

        #[test]
        fn counter_counts() {
            let c = Counter::new(4);
            c.incr(0);
            c.incr(1);
            c.add(2, 8);
            assert_eq!(c.get(), 10);
        }

        #[test]
        fn counter_clone_shares_state() {
            let c = Counter::new(2);
            let c2 = c.clone();
            c.incr(0);
            c2.incr(1);
            assert_eq!(c.get(), 2);
            assert_eq!(c2.get(), 2);
        }

        #[test]
        fn histogram_buckets_by_bit_length() {
            let h = Log2Histogram::new();
            h.record(0); // bucket 0
            h.record(1); // bucket 1
            h.record(2); // bucket 2
            h.record(3); // bucket 2
            h.record(1024); // bucket 11
            let s = h.snapshot();
            assert_eq!(s.count, 5);
            assert_eq!(s.sum, 1030);
            assert_eq!(s.max, 1024);
            assert_eq!(s.buckets[0], 1);
            assert_eq!(s.buckets[1], 1);
            assert_eq!(s.buckets[2], 2);
            assert_eq!(s.buckets[11], 1);
        }

        #[test]
        fn histogram_max_value_does_not_overflow_buckets() {
            let h = Log2Histogram::new();
            h.record(u64::MAX);
            let s = h.snapshot();
            assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 1);
            assert_eq!(s.max, u64::MAX);
        }

        #[test]
        fn concurrent_counter_and_histogram_lose_nothing() {
            const THREADS: usize = 8;
            const PER: u64 = 10_000;
            let c = Counter::new(THREADS);
            let h = Log2Histogram::new();
            let hwm = HighWaterMark::new();
            std::thread::scope(|scope| {
                for t in 0..THREADS {
                    let (c, h, hwm) = (&c, &h, &hwm);
                    scope.spawn(move || {
                        for i in 0..PER {
                            c.incr(t);
                            h.record(i);
                            hwm.observe(t as u64 * PER + i);
                        }
                    });
                }
            });
            assert_eq!(c.get(), THREADS as u64 * PER);
            let s = h.snapshot();
            assert_eq!(s.count, THREADS as u64 * PER);
            assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
            assert_eq!(hwm.get(), THREADS as u64 * PER - 1);
        }

        #[test]
        fn stopwatch_measures_something() {
            let sw = Stopwatch::start();
            std::thread::sleep(std::time::Duration::from_millis(2));
            assert!(sw.elapsed_ns() >= 1_000_000);
        }
    }
}
