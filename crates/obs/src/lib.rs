//! Observability for the Citrus reproduction (`citrus-obs`).
//!
//! The paper's evaluation (§6, Figs. 8–10) turns on *why* the scalable RCU
//! beats the global-lock flavor — grace-period latency, read-section
//! volume, lock contention inside the tree — but raw throughput hides all
//! of that. This crate provides the instruments the rest of the workspace
//! registers into:
//!
//! * [`Counter`] — striped event counter (reuses
//!   [`citrus_sync::StripedCounter`]): uncontended relaxed `fetch_add` per
//!   event, summed on snapshot.
//! * [`Log2Histogram`] — fixed-bucket power-of-two histogram, primarily
//!   for latencies in nanoseconds (`synchronize_rcu` duration) but also
//!   for counts (nodes freed per epoch advance).
//! * [`HighWaterMark`] — monotone maximum gauge (limbo-bag depth).
//! * [`Stopwatch`] — a timer that compiles away with stats off.
//! * [`MetricsRegistry`] — named components register their instruments;
//!   [`MetricsRegistry::snapshot`] produces a [`MetricsSnapshot`] that
//!   renders as an aligned text table or CSV.
//!
//! # The `stats` feature: zero cost when off
//!
//! Every instrument is a zero-sized type with `#[inline]` empty methods
//! unless the crate is built with the `stats` feature. The **API is
//! identical in both modes**, so instrumented crates (`citrus-rcu`,
//! `citrus-reclaim`, `citrus`) carry no `cfg` noise: with stats off the
//! calls compile to nothing — no atomics, no branches, no memory. The
//! crates forward the feature (`citrus/stats` → `citrus-obs/stats`), and a
//! compile-time test asserts the no-op types are zero-sized.
//!
//! # Example
//!
//! ```
//! use citrus_obs::{Counter, MetricsRegistry};
//!
//! let registry = MetricsRegistry::new();
//! let restarts = Counter::new(4);
//! registry.register_counter("citrus", "insert_retries", &restarts);
//!
//! restarts.incr(0); // hot path: relaxed add on a private stripe (or a no-op)
//!
//! let snap = registry.snapshot();
//! #[cfg(feature = "stats")]
//! assert_eq!(snap.counter("citrus", "insert_retries"), Some(1));
//! #[cfg(not(feature = "stats"))]
//! assert!(snap.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod metric;
mod registry;
mod snapshot;

pub use metric::{Counter, HighWaterMark, Log2Histogram, Stopwatch};
pub use registry::MetricsRegistry;
pub use snapshot::{HistogramSnapshot, MetricEntry, MetricValue, MetricsSnapshot};

/// `true` iff this build collects statistics (the `stats` feature is on).
pub const STATS_ENABLED: bool = cfg!(feature = "stats");
