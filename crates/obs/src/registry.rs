//! The [`MetricsRegistry`]: named components register their instruments;
//! a snapshot freezes every registered metric at once.

#[cfg(feature = "stats")]
use std::sync::{Arc, Mutex};

use crate::metric::{Counter, HighWaterMark, Log2Histogram};
use crate::snapshot::MetricsSnapshot;
#[cfg(feature = "stats")]
use crate::snapshot::{MetricEntry, MetricValue};

#[cfg(feature = "stats")]
enum Instrument {
    Counter(Counter),
    Histogram(Log2Histogram),
    HighWaterMark(HighWaterMark),
}

#[cfg(feature = "stats")]
struct Registration {
    component: String,
    name: String,
    instrument: Instrument,
}

/// Central registry of named metrics.
///
/// Components register cloned handles of their instruments under a
/// `(component, name)` pair; [`snapshot`](Self::snapshot) then freezes all
/// of them in registration order. Because the registry holds clones
/// (instruments are `Arc`-backed), snapshots keep working after the
/// instrumented structure is dropped.
///
/// Cloning the registry is cheap and shares the underlying list, so one
/// registry can be threaded through a whole benchmark run. With the
/// `stats` feature off the registry is zero-sized, registration is a
/// no-op, and snapshots are empty.
///
/// # Example
///
/// ```
/// use citrus_obs::{Counter, Log2Histogram, MetricsRegistry};
///
/// let registry = MetricsRegistry::new();
/// let calls = Counter::new(2);
/// let latency = Log2Histogram::new();
/// registry.register_counter("rcu", "synchronize_calls", &calls);
/// registry.register_histogram("rcu", "synchronize_ns", &latency);
///
/// calls.incr(0);
/// latency.record(1500);
///
/// let snap = registry.snapshot();
/// #[cfg(feature = "stats")]
/// {
///     assert_eq!(snap.counter("rcu", "synchronize_calls"), Some(1));
///     assert_eq!(snap.histogram("rcu", "synchronize_ns").unwrap().count, 1);
/// }
/// #[cfg(not(feature = "stats"))]
/// assert!(snap.is_empty());
/// ```
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    #[cfg(feature = "stats")]
    inner: Option<Arc<Mutex<Vec<Registration>>>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        #[cfg(feature = "stats")]
        {
            let n = self
                .inner
                .as_ref()
                .and_then(|i| i.lock().ok().map(|v| v.len()))
                .unwrap_or(0);
            f.debug_struct("MetricsRegistry")
                .field("metrics", &n)
                .finish()
        }
        #[cfg(not(feature = "stats"))]
        {
            f.debug_struct("MetricsRegistry").finish()
        }
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        #[cfg(feature = "stats")]
        {
            Self {
                inner: Some(Arc::new(Mutex::new(Vec::new()))),
            }
        }
        #[cfg(not(feature = "stats"))]
        {
            Self {}
        }
    }

    #[cfg(feature = "stats")]
    fn push(&self, component: &str, name: &str, instrument: Instrument) {
        if let Some(inner) = &self.inner {
            inner
                .lock()
                .expect("metrics registry poisoned")
                .push(Registration {
                    component: component.to_string(),
                    name: name.to_string(),
                    instrument,
                });
        }
    }

    /// Registers a counter under `(component, name)`; the registry keeps a
    /// shared handle, so later increments show up in snapshots.
    pub fn register_counter(&self, component: &str, name: &str, counter: &Counter) {
        #[cfg(feature = "stats")]
        self.push(component, name, Instrument::Counter(counter.clone()));
        #[cfg(not(feature = "stats"))]
        {
            let _ = (component, name, counter);
        }
    }

    /// Registers a histogram under `(component, name)`.
    pub fn register_histogram(&self, component: &str, name: &str, histogram: &Log2Histogram) {
        #[cfg(feature = "stats")]
        self.push(component, name, Instrument::Histogram(histogram.clone()));
        #[cfg(not(feature = "stats"))]
        {
            let _ = (component, name, histogram);
        }
    }

    /// Registers a high-water mark under `(component, name)`.
    pub fn register_hwm(&self, component: &str, name: &str, hwm: &HighWaterMark) {
        #[cfg(feature = "stats")]
        self.push(component, name, Instrument::HighWaterMark(hwm.clone()));
        #[cfg(not(feature = "stats"))]
        {
            let _ = (component, name, hwm);
        }
    }

    /// Freezes every registered metric. Always returns an (possibly
    /// empty) snapshot, so callers need no feature gates.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        #[cfg(feature = "stats")]
        {
            if let Some(inner) = &self.inner {
                let regs = inner.lock().expect("metrics registry poisoned");
                return MetricsSnapshot {
                    entries: regs
                        .iter()
                        .map(|r| MetricEntry {
                            component: r.component.clone(),
                            name: r.name.clone(),
                            value: match &r.instrument {
                                Instrument::Counter(c) => MetricValue::Count(c.get()),
                                Instrument::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                                Instrument::HighWaterMark(m) => MetricValue::Maximum(m.get()),
                            },
                        })
                        .collect(),
                };
            }
            MetricsSnapshot::default()
        }
        #[cfg(not(feature = "stats"))]
        {
            MetricsSnapshot::default()
        }
    }
}

#[cfg(test)]
mod tests {
    #[cfg(not(feature = "stats"))]
    use super::*;

    #[cfg(not(feature = "stats"))]
    #[test]
    fn noop_registry_is_zero_sized_and_empty() {
        assert_eq!(core::mem::size_of::<MetricsRegistry>(), 0);
        let r = MetricsRegistry::new();
        let c = Counter::new(1);
        r.register_counter("x", "y", &c);
        c.incr(0);
        assert!(r.snapshot().is_empty());
    }

    #[cfg(feature = "stats")]
    mod stats_on {
        use super::super::*;

        #[test]
        fn snapshot_sees_updates_after_registration() {
            let r = MetricsRegistry::new();
            let c = Counter::new(2);
            let h = Log2Histogram::new();
            let m = HighWaterMark::new();
            r.register_counter("tree", "restarts", &c);
            r.register_histogram("rcu", "sync_ns", &h);
            r.register_hwm("reclaim", "limbo", &m);

            assert_eq!(r.snapshot().counter("tree", "restarts"), Some(0));
            c.add(0, 5);
            h.record(100);
            m.observe(7);
            let snap = r.snapshot();
            assert_eq!(snap.counter("tree", "restarts"), Some(5));
            assert_eq!(snap.histogram("rcu", "sync_ns").unwrap().count, 1);
            assert_eq!(snap.maximum("reclaim", "limbo"), Some(7));
            assert_eq!(snap.entries.len(), 3);
        }

        #[test]
        fn snapshot_outlives_instrument_owner() {
            let r = MetricsRegistry::new();
            {
                let c = Counter::new(1);
                r.register_counter("gone", "count", &c);
                c.add(0, 3);
                // c dropped here; the registry's clone keeps the state.
            }
            assert_eq!(r.snapshot().counter("gone", "count"), Some(3));
        }

        #[test]
        fn cloned_registry_shares_registrations() {
            let r = MetricsRegistry::new();
            let r2 = r.clone();
            let c = Counter::new(1);
            r2.register_counter("shared", "n", &c);
            c.incr(0);
            assert_eq!(r.snapshot().counter("shared", "n"), Some(1));
        }

        #[test]
        fn concurrent_registration_and_snapshot() {
            let r = MetricsRegistry::new();
            std::thread::scope(|scope| {
                for t in 0..4 {
                    let r = r.clone();
                    scope.spawn(move || {
                        for i in 0..50 {
                            let c = Counter::new(1);
                            c.add(0, 1);
                            r.register_counter("t", &format!("{t}-{i}"), &c);
                            let _ = r.snapshot();
                        }
                    });
                }
            });
            let snap = r.snapshot();
            assert_eq!(snap.entries.len(), 200);
            assert!(snap
                .entries
                .iter()
                .all(|e| e.value == MetricValue::Count(1)));
        }
    }
}
