//! Cache-padded striped event counters.

use crate::CachePadded;
use core::fmt;
use core::sync::atomic::{AtomicU64, Ordering};

/// A striped counter: `N` cache-padded `AtomicU64` cells summed on read.
///
/// Benchmark worker threads and structure-internal statistics (retry counts,
/// grace periods) increment one stripe each, so the hot path is an
/// uncontended `fetch_add` on a private cache line; reads sum all stripes.
///
/// # Example
///
/// ```
/// use citrus_sync::StripedCounter;
///
/// let c = StripedCounter::new(4);
/// c.add(0, 10);
/// c.add(3, 5);
/// assert_eq!(c.sum(), 15);
/// ```
pub struct StripedCounter {
    stripes: Box<[CachePadded<AtomicU64>]>,
}

impl StripedCounter {
    /// Creates a counter with `stripes` cells (at least one).
    ///
    /// # Panics
    ///
    /// Panics if `stripes` is zero.
    pub fn new(stripes: usize) -> Self {
        assert!(stripes > 0, "a counter needs at least one stripe");
        let stripes = (0..stripes)
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self { stripes }
    }

    /// Adds `n` to stripe `slot % stripe_count`.
    #[inline]
    pub fn add(&self, slot: usize, n: u64) {
        self.stripes[slot % self.stripes.len()].fetch_add(n, Ordering::Relaxed);
    }

    /// Increments stripe `slot % stripe_count` by one.
    #[inline]
    pub fn incr(&self, slot: usize) {
        self.add(slot, 1);
    }

    /// Sums all stripes.
    ///
    /// The result is exact once all writers have quiesced; during concurrent
    /// writes it is a linearizable-per-stripe snapshot (monotone lower
    /// bound).
    pub fn sum(&self) -> u64 {
        self.stripes.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }

    /// Number of stripes.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// Resets every stripe to zero (callers must ensure writers quiesced if
    /// an exact zero point is required).
    pub fn reset(&self) {
        for s in self.stripes.iter() {
            s.store(0, Ordering::Relaxed);
        }
    }
}

impl fmt::Debug for StripedCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StripedCounter")
            .field("stripes", &self.stripes.len())
            .field("sum", &self.sum())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_across_stripes() {
        let c = StripedCounter::new(3);
        c.add(0, 1);
        c.add(1, 2);
        c.add(2, 3);
        c.incr(0);
        assert_eq!(c.sum(), 7);
        assert_eq!(c.stripe_count(), 3);
    }

    #[test]
    fn slot_wraps_modulo_stripes() {
        let c = StripedCounter::new(2);
        c.add(5, 4); // stripe 1
        assert_eq!(c.sum(), 4);
    }

    #[test]
    fn reset_zeroes() {
        let c = StripedCounter::new(2);
        c.add(0, 9);
        c.reset();
        assert_eq!(c.sum(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one stripe")]
    fn zero_stripes_panics() {
        let _ = StripedCounter::new(0);
    }

    #[test]
    fn concurrent_adds_do_not_lose_counts() {
        const THREADS: usize = 8;
        const PER: u64 = 20_000;
        let c = StripedCounter::new(THREADS);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let c = &c;
                scope.spawn(move || {
                    for _ in 0..PER {
                        c.incr(t);
                    }
                });
            }
        });
        assert_eq!(c.sum(), THREADS as u64 * PER);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(format!("{:?}", StripedCounter::new(1)).contains("StripedCounter"));
    }
}
