//! Synchronization substrate for the Citrus reproduction.
//!
//! This crate provides the low-level building blocks shared by the RCU
//! implementations (`citrus-rcu`), the epoch-based reclamation domain
//! (`citrus-reclaim`), and the concurrent data structures themselves:
//!
//! * [`CachePadded`] — align-and-pad wrapper that gives each value its own
//!   cache line, avoiding false sharing between per-thread records. The
//!   paper's evaluation section stresses that field layout and cache-line
//!   alignment "often influences the results much more than the algorithmic
//!   aspects of the implementation"; every per-thread record in this
//!   repository is cache padded.
//! * [`Backoff`] — bounded exponential backoff that spins briefly and then
//!   yields to the OS scheduler. On an oversubscribed host (more threads
//!   than cores) pure spinning burns whole scheduler quanta while the lock
//!   holder is descheduled; yielding is essential there.
//! * [`RawSpinLock`] / [`SpinMutex`] — the per-node lock used by the Citrus
//!   tree and the lock-based baselines. A single `AtomicBool` byte, so a node
//!   stays small, with a spin-then-yield acquire loop.
//! * [`Registry`] — a grow-only, lock-free registry of per-thread slots. RCU
//!   flavors and the reclamation domain register one slot per thread and
//!   iterate over all slots during `synchronize_rcu` / epoch advancement.
//! * [`StripedCounter`] — cache-padded striped event counter for low-cost
//!   statistics.
//!
//! # Example
//!
//! ```
//! use citrus_sync::SpinMutex;
//!
//! let m = SpinMutex::new(0u64);
//! *m.lock() += 1;
//! assert_eq!(*m.lock(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backoff;
mod counter;
mod pad;
mod registry;
mod spin;

pub use backoff::Backoff;
pub use counter::StripedCounter;
pub use pad::CachePadded;
pub use registry::{Registry, SlotHandle, SlotIter, SlotRef};
pub use spin::{RawSpinLock, SpinMutex, SpinMutexGuard};
