//! Cache-line padding.

use core::fmt;
use core::ops::{Deref, DerefMut};

/// Pads and aligns a value to the length of a cache line.
///
/// Per-thread records that live in a shared array or list (RCU reader slots,
/// epoch records, striped counters) must not share cache lines, otherwise a
/// store by one thread invalidates the line holding another thread's hot
/// state and the "readers never synchronize" property of RCU is lost to
/// false sharing.
///
/// 128-byte alignment is used on x86-64 and aarch64 because the adjacent
/// cache-line prefetcher on those platforms effectively couples pairs of
/// 64-byte lines.
///
/// # Example
///
/// ```
/// use citrus_sync::CachePadded;
/// use std::sync::atomic::AtomicU64;
///
/// struct ReaderSlot {
///     word: CachePadded<AtomicU64>,
/// }
/// let slot = ReaderSlot { word: CachePadded::new(AtomicU64::new(0)) };
/// assert_eq!(core::mem::align_of_val(&slot.word), 128);
/// ```
#[cfg_attr(any(target_arch = "x86_64", target_arch = "aarch64"), repr(align(128)))]
#[cfg_attr(
    not(any(target_arch = "x86_64", target_arch = "aarch64")),
    repr(align(64))
)]
#[derive(Default, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value`, padding it to a full cache line.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Consumes the wrapper, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::mem;

    #[test]
    fn alignment_is_at_least_64() {
        assert!(mem::align_of::<CachePadded<u8>>() >= 64);
        assert!(mem::size_of::<CachePadded<u8>>() >= 64);
    }

    #[test]
    fn distinct_fields_get_distinct_lines() {
        #[allow(dead_code)]
        struct Two {
            a: CachePadded<u64>,
            b: CachePadded<u64>,
        }
        let two = Two {
            a: CachePadded::new(1),
            b: CachePadded::new(2),
        };
        let a = &two.a as *const _ as usize;
        let b = &two.b as *const _ as usize;
        assert!(a.abs_diff(b) >= 64);
    }

    #[test]
    fn deref_and_into_inner() {
        let mut p = CachePadded::new(41u32);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
    }

    #[test]
    fn debug_is_nonempty() {
        let p = CachePadded::new(7);
        assert!(format!("{p:?}").contains('7'));
    }

    #[test]
    fn from_value() {
        let p: CachePadded<&str> = "x".into();
        assert_eq!(*p, "x");
    }
}
