//! Grow-only lock-free registry of per-thread slots.
//!
//! RCU flavors and the epoch reclamation domain both need the same shape of
//! bookkeeping: each participating thread owns one cache-padded record, and
//! a synchronizing thread iterates over *all* records (`synchronize_rcu`
//! waits on every reader slot; epoch advancement inspects every pinned
//! epoch). Threads come and go, so records are claimable and reusable, but
//! they are never freed while the registry is alive — that is what makes
//! lock-free iteration sound.

use core::fmt;
use core::marker::PhantomData;
use core::ops::Deref;
use core::ptr;
use core::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

/// A grow-only registry of per-thread slots of type `T`.
///
/// * [`register`](Registry::register) claims a free slot (reusing a
///   previously released one if possible) and returns a [`SlotHandle`] that
///   releases the slot on drop.
/// * [`iter`](Registry::iter) walks every slot ever created, concurrently
///   with registrations, without locking.
///
/// Slots are allocated once and freed only when the registry itself is
/// dropped, so references handed out by the iterator remain valid for the
/// registry's lifetime.
///
/// `T` is shared between the owning thread and iterating threads, so all of
/// its mutable state must be atomic (the intended use stores a single
/// `CachePadded<AtomicU64>`).
///
/// # Example
///
/// ```
/// use citrus_sync::Registry;
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let registry: Registry<AtomicU64> = Registry::new();
/// let slot = registry.register(|| AtomicU64::new(0), |old| old.store(0, Ordering::Relaxed));
/// slot.store(7, Ordering::Relaxed);
/// let sum: u64 = registry.iter().map(|s| s.load(Ordering::Relaxed)).sum();
/// assert_eq!(sum, 7);
/// ```
pub struct Registry<T> {
    head: AtomicPtr<SlotNode<T>>,
}

struct SlotNode<T> {
    value: T,
    claimed: AtomicBool,
    next: *mut SlotNode<T>,
}

// SAFETY: the registry shares `&T` across threads (iteration) and transfers
// slot ownership between threads (reuse), so both bounds are required and
// sufficient.
unsafe impl<T: Send + Sync> Send for Registry<T> {}
unsafe impl<T: Send + Sync> Sync for Registry<T> {}

impl<T> Registry<T> {
    /// Creates an empty registry.
    pub const fn new() -> Self {
        Self {
            head: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Claims a slot for the calling thread.
    ///
    /// If a previously released slot exists it is reused and `reuse` is
    /// called on it to reset its state *after* the claim succeeds (iterating
    /// threads may observe the slot in its pre-reset state momentarily;
    /// callers must make the released state and the reset state equivalent
    /// for their protocol — e.g. "not inside a critical section").
    /// Otherwise a fresh slot is created with `init`.
    pub fn register(&self, init: impl FnOnce() -> T, reuse: impl FnOnce(&T)) -> SlotHandle<'_, T> {
        // Try to reuse a released slot.
        let mut cur = self.head.load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: slots are never freed while the registry is alive.
            let node = unsafe { &*cur };
            if !node.claimed.load(Ordering::Relaxed)
                && node
                    .claimed
                    .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                reuse(&node.value);
                return SlotHandle {
                    node,
                    _not_send: PhantomData,
                };
            }
            cur = node.next;
        }

        // No free slot: push a new one at the head.
        let node = Box::into_raw(Box::new(SlotNode {
            value: init(),
            claimed: AtomicBool::new(true),
            next: ptr::null_mut(),
        }));
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // SAFETY: `node` is uniquely owned until the CAS publishes it.
            unsafe { (*node).next = head };
            match self
                .head
                .compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(h) => head = h,
            }
        }
        // SAFETY: just published; nodes are never freed while registry lives.
        let node = unsafe { &*node };
        SlotHandle {
            node,
            _not_send: PhantomData,
        }
    }

    /// Iterates over every slot ever registered (claimed or released).
    ///
    /// Runs concurrently with registrations; slots published after the
    /// iterator was created may or may not be observed.
    pub fn iter(&self) -> SlotIter<'_, T> {
        SlotIter {
            cur: self.head.load(Ordering::Acquire),
            _marker: PhantomData,
        }
    }

    /// Number of slots ever created (O(n) walk; for diagnostics and tests).
    pub fn slot_count(&self) -> usize {
        self.iter().count()
    }
}

impl<T> Default for Registry<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for Registry<T> {
    fn drop(&mut self) {
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            // SAFETY: `&mut self` means no handles or iterators are alive
            // (they borrow the registry), so reclaiming every node is safe.
            let boxed = unsafe { Box::from_raw(cur) };
            cur = boxed.next;
        }
    }
}

impl<T> fmt::Debug for Registry<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("slots", &self.slot_count())
            .finish()
    }
}

/// Exclusive handle to a claimed slot; releases the slot when dropped.
///
/// Dereferences to the slot value. Not `Send`: a slot belongs to the thread
/// that claimed it (per-thread RCU/epoch state is meaningless if migrated
/// mid-critical-section).
pub struct SlotHandle<'r, T> {
    node: &'r SlotNode<T>,
    _not_send: PhantomData<*mut ()>,
}

impl<T> SlotHandle<'_, T> {
    /// Returns a reference to the slot value with the registry's lifetime
    /// erased to this handle's borrow.
    pub fn value(&self) -> &T {
        &self.node.value
    }
}

impl<T> Deref for SlotHandle<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.node.value
    }
}

impl<T> Drop for SlotHandle<'_, T> {
    fn drop(&mut self) {
        self.node.claimed.store(false, Ordering::Release);
    }
}

impl<T: fmt::Debug> fmt::Debug for SlotHandle<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("SlotHandle").field(&self.node.value).finish()
    }
}

/// A slot observed during iteration: the value plus its claim status.
#[derive(Debug)]
pub struct SlotRef<'r, T> {
    value: &'r T,
    claimed: bool,
}

impl<'r, T> SlotRef<'r, T> {
    /// The slot's value.
    pub fn value(&self) -> &'r T {
        self.value
    }

    /// Whether the slot was claimed by some thread when observed.
    pub fn is_claimed(&self) -> bool {
        self.claimed
    }
}

impl<T> Deref for SlotRef<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.value
    }
}

/// Iterator over registry slots; see [`Registry::iter`].
pub struct SlotIter<'r, T> {
    cur: *mut SlotNode<T>,
    _marker: PhantomData<&'r Registry<T>>,
}

impl<'r, T> Iterator for SlotIter<'r, T> {
    type Item = SlotRef<'r, T>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.cur.is_null() {
            return None;
        }
        // SAFETY: slots live as long as the registry ('r).
        let node = unsafe { &*self.cur };
        self.cur = node.next;
        Some(SlotRef {
            value: &node.value,
            claimed: node.claimed.load(Ordering::Acquire),
        })
    }
}

impl<T> fmt::Debug for SlotIter<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SlotIter").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Barrier;

    fn new_slot() -> AtomicU64 {
        AtomicU64::new(0)
    }

    fn reset_slot(s: &AtomicU64) {
        s.store(0, Ordering::Relaxed);
    }

    #[test]
    fn register_and_iterate() {
        let r: Registry<AtomicU64> = Registry::new();
        let a = r.register(new_slot, reset_slot);
        let b = r.register(new_slot, reset_slot);
        a.store(1, Ordering::Relaxed);
        b.store(2, Ordering::Relaxed);
        let sum: u64 = r.iter().map(|s| s.load(Ordering::Relaxed)).sum();
        assert_eq!(sum, 3);
        assert_eq!(r.slot_count(), 2);
        assert!(r.iter().all(|s| s.is_claimed()));
    }

    #[test]
    fn released_slots_are_reused_and_reset() {
        let r: Registry<AtomicU64> = Registry::new();
        {
            let a = r.register(new_slot, reset_slot);
            a.store(99, Ordering::Relaxed);
        }
        assert_eq!(r.slot_count(), 1);
        let b = r.register(new_slot, reset_slot);
        // The reused slot was reset by the `reuse` callback.
        assert_eq!(b.load(Ordering::Relaxed), 0);
        assert_eq!(r.slot_count(), 1, "slot was reused, not re-created");
    }

    #[test]
    fn iteration_sees_released_slots_as_unclaimed() {
        let r: Registry<AtomicU64> = Registry::new();
        drop(r.register(new_slot, reset_slot));
        let slots: Vec<_> = r.iter().collect();
        assert_eq!(slots.len(), 1);
        assert!(!slots[0].is_claimed());
    }

    #[test]
    fn concurrent_registration_is_race_free() {
        const THREADS: usize = 16;
        let r: Registry<AtomicU64> = Registry::new();
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|scope| {
            for i in 0..THREADS {
                let (r, barrier) = (&r, &barrier);
                scope.spawn(move || {
                    barrier.wait();
                    let slot = r.register(new_slot, reset_slot);
                    slot.store(i as u64 + 1, Ordering::Relaxed);
                    // Hold the slot until everyone registered, forcing
                    // THREADS distinct slots.
                    barrier.wait();
                });
            }
        });
        assert_eq!(r.slot_count(), THREADS);
    }

    #[test]
    fn reuse_prefers_existing_slots_under_churn() {
        let r: Registry<AtomicU64> = Registry::new();
        for _ in 0..100 {
            let h = r.register(new_slot, reset_slot);
            h.store(1, Ordering::Relaxed);
        }
        assert_eq!(r.slot_count(), 1);
    }

    #[test]
    fn debug_impls_nonempty() {
        let r: Registry<AtomicU64> = Registry::new();
        let h = r.register(new_slot, reset_slot);
        assert!(format!("{r:?}").contains("Registry"));
        assert!(format!("{h:?}").contains("SlotHandle"));
        assert!(format!("{:?}", r.iter()).contains("SlotIter"));
    }
}
