//! Spin-then-yield mutual exclusion.
//!
//! The Citrus tree acquires a lock per modified node (`lock(prev)`,
//! `lock(curr)`, ...). Nodes are small and numerous, so the lock must be a
//! single byte of state embedded in the node — not a pointer to a heap
//! allocation, and not a platform mutex dragging a futex word plus queue
//! state into every node. [`RawSpinLock`] is that embedded lock;
//! [`SpinMutex`] wraps it with data and RAII for general use.

use crate::Backoff;
use core::cell::UnsafeCell;
use core::fmt;
use core::ops::{Deref, DerefMut};
use core::sync::atomic::{AtomicBool, Ordering};

/// A one-byte test-and-test-and-set spin lock with yield fallback.
///
/// This is the per-node lock of the reproduction's data structures. It
/// deliberately exposes a *raw* interface — [`lock`](Self::lock) and an
/// unsafe [`unlock`](Self::unlock) — because the Citrus `delete` operation
/// acquires up to five node locks and releases them together ("release all
/// locks"), which does not nest like RAII guards.
///
/// # Example
///
/// ```
/// use citrus_sync::RawSpinLock;
///
/// let lock = RawSpinLock::new();
/// lock.lock();
/// // ... exclusive section ...
/// unsafe { lock.unlock() }; // safety: we hold the lock
/// ```
pub struct RawSpinLock {
    locked: AtomicBool,
}

impl RawSpinLock {
    /// Creates a new unlocked lock.
    pub const fn new() -> Self {
        Self {
            locked: AtomicBool::new(false),
        }
    }

    /// Acquires the lock, spinning briefly and then yielding.
    #[inline]
    pub fn lock(&self) {
        if self.try_lock() {
            return;
        }
        self.lock_slow();
    }

    #[cold]
    fn lock_slow(&self) {
        let backoff = Backoff::new();
        loop {
            // Test-and-test-and-set: spin on a plain load so waiting threads
            // do not bounce the cache line with failed RMW attempts.
            while self.locked.load(Ordering::Relaxed) {
                // Progress depends on the holder: under a deterministic
                // schedule, park here until an unlock's wake hint.
                #[cfg(feature = "chaos")]
                citrus_chaos::blocked!("sync/spin/lock-wait");
                backoff.snooze();
            }
            if self.try_lock() {
                return;
            }
        }
    }

    /// Attempts to acquire the lock without blocking.
    ///
    /// Returns `true` on success.
    #[inline]
    pub fn try_lock(&self) -> bool {
        self.locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Releases the lock.
    ///
    /// # Safety
    ///
    /// The calling thread must currently hold this lock (a matching
    /// [`lock`](Self::lock) or successful [`try_lock`](Self::try_lock) with
    /// no intervening `unlock`).
    #[inline]
    pub unsafe fn unlock(&self) {
        debug_assert!(self.locked.load(Ordering::Relaxed));
        self.locked.store(false, Ordering::Release);
        #[cfg(feature = "chaos")]
        citrus_chaos::wake_hint();
    }

    /// Returns `true` if the lock is currently held by some thread.
    ///
    /// Only a hint: the answer may be stale by the time it is observed.
    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }
}

impl Default for RawSpinLock {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for RawSpinLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RawSpinLock")
            .field("locked", &self.is_locked())
            .finish()
    }
}

/// A mutex built on [`RawSpinLock`] that owns its data and hands out RAII
/// guards.
///
/// Used for cold-path bookkeeping (graveyards, registries) where the
/// convenience of a guard outweighs the raw interface.
///
/// # Example
///
/// ```
/// use citrus_sync::SpinMutex;
///
/// let m = SpinMutex::new(vec![1, 2]);
/// m.lock().push(3);
/// assert_eq!(m.lock().len(), 3);
/// ```
pub struct SpinMutex<T: ?Sized> {
    raw: RawSpinLock,
    data: UnsafeCell<T>,
}

// SAFETY: SpinMutex provides exclusive access to `T` via the lock protocol,
// so sharing the mutex across threads is safe whenever sending `T` is.
unsafe impl<T: ?Sized + Send> Send for SpinMutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for SpinMutex<T> {}

impl<T> SpinMutex<T> {
    /// Creates a new mutex holding `data`.
    pub const fn new(data: T) -> Self {
        Self {
            raw: RawSpinLock::new(),
            data: UnsafeCell::new(data),
        }
    }

    /// Consumes the mutex, returning the inner data.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> SpinMutex<T> {
    /// Acquires the mutex, blocking (spin-then-yield) until available.
    pub fn lock(&self) -> SpinMutexGuard<'_, T> {
        self.raw.lock();
        SpinMutexGuard { mutex: self }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<SpinMutexGuard<'_, T>> {
        if self.raw.try_lock() {
            Some(SpinMutexGuard { mutex: self })
        } else {
            None
        }
    }

    /// Returns a mutable reference to the data without locking.
    ///
    /// Safe because `&mut self` proves no other thread holds the mutex.
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: fmt::Debug> fmt::Debug for SpinMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("SpinMutex").field("data", &*guard).finish(),
            None => f
                .debug_struct("SpinMutex")
                .field("data", &"<locked>")
                .finish(),
        }
    }
}

impl<T: Default> Default for SpinMutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// RAII guard for [`SpinMutex`]; releases the lock on drop.
pub struct SpinMutexGuard<'a, T: ?Sized> {
    mutex: &'a SpinMutex<T>,
}

impl<T: ?Sized> Deref for SpinMutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the guard proves the lock is held, giving exclusive access.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T: ?Sized> DerefMut for SpinMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T: ?Sized> Drop for SpinMutexGuard<'_, T> {
    fn drop(&mut self) {
        // SAFETY: the guard's existence proves this thread holds the lock.
        unsafe { self.mutex.raw.unlock() }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for SpinMutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn raw_lock_unlock() {
        let l = RawSpinLock::new();
        assert!(!l.is_locked());
        l.lock();
        assert!(l.is_locked());
        assert!(!l.try_lock());
        unsafe { l.unlock() };
        assert!(!l.is_locked());
        assert!(l.try_lock());
        unsafe { l.unlock() };
    }

    #[test]
    fn mutex_guards_data() {
        let m = SpinMutex::new(5);
        {
            let mut g = m.lock();
            *g = 6;
            assert!(m.try_lock().is_none());
        }
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn mutex_counts_under_contention() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 10_000;
        let m = Arc::new(SpinMutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let m = Arc::clone(&m);
            handles.push(thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), (THREADS * PER_THREAD) as u64);
    }

    #[test]
    fn get_mut_bypasses_lock() {
        let mut m = SpinMutex::new(1);
        *m.get_mut() = 2;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn debug_shows_data_or_locked() {
        let m = SpinMutex::new(3);
        assert!(format!("{m:?}").contains('3'));
        let _g = m.lock();
        assert!(format!("{m:?}").contains("locked"));
    }

    #[test]
    fn raw_lock_is_one_byte() {
        assert_eq!(core::mem::size_of::<RawSpinLock>(), 1);
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RawSpinLock>();
        assert_send_sync::<SpinMutex<u64>>();
    }
}
