//! Bounded exponential backoff with a yield fallback.

use core::fmt;
use std::hint;
use std::thread;

/// Exponential backoff for contended retry loops.
///
/// The first few waits are busy spins (`core::hint::spin_loop`), doubling in
/// length each time. Once the spin budget is exhausted the backoff switches
/// to [`std::thread::yield_now`], which is crucial when the machine is
/// oversubscribed: a spinning waiter can otherwise burn its entire scheduler
/// quantum while the thread it waits for is not running at all. The Citrus
/// paper's experiments run up to 64 threads; this reproduction may run them
/// on far fewer cores, so every wait loop in the repository uses this type.
///
/// # Example
///
/// ```
/// use citrus_sync::Backoff;
/// use std::sync::atomic::{AtomicBool, Ordering};
///
/// let flag = AtomicBool::new(true); // normally set by another thread
/// let backoff = Backoff::new();
/// while !flag.load(Ordering::Acquire) {
///     backoff.snooze();
/// }
/// ```
pub struct Backoff {
    step: core::cell::Cell<u32>,
}

/// Spin budget: beyond `2^SPIN_LIMIT` spin iterations, yield instead.
const SPIN_LIMIT: u32 = 6;

impl Backoff {
    /// Creates a fresh backoff with zero accumulated steps.
    pub const fn new() -> Self {
        Self {
            step: core::cell::Cell::new(0),
        }
    }

    /// Resets the backoff to its initial state.
    pub fn reset(&self) {
        self.step.set(0);
    }

    /// Backs off in a spin loop without ever yielding.
    ///
    /// Appropriate only for waits that are guaranteed to be very short and
    /// whose producer is guaranteed to be running (e.g. lock-free CAS retry
    /// where *this* thread makes progress either way).
    pub fn spin(&self) {
        let step = self.step.get().min(SPIN_LIMIT);
        for _ in 0..(1u32 << step) {
            hint::spin_loop();
        }
        if self.step.get() <= SPIN_LIMIT {
            self.step.set(self.step.get() + 1);
        }
    }

    /// Backs off, yielding to the OS scheduler once the spin budget is spent.
    ///
    /// This is the right call when waiting for *another thread* to make
    /// progress (lock release, RCU read-side exit, epoch advance).
    pub fn snooze(&self) {
        if self.step.get() <= SPIN_LIMIT {
            self.spin();
        } else {
            thread::yield_now();
        }
    }

    /// Returns `true` once the spin budget is exhausted and further
    /// [`snooze`](Self::snooze) calls will yield.
    ///
    /// Callers that can block on an OS primitive instead of yielding use
    /// this as the switch-over signal.
    pub fn is_completed(&self) -> bool {
        self.step.get() > SPIN_LIMIT
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Backoff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Backoff")
            .field("step", &self.step.get())
            .field("is_completed", &self.is_completed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completes_after_budget() {
        let b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..=SPIN_LIMIT {
            b.spin();
        }
        assert!(b.is_completed());
    }

    #[test]
    fn reset_restores_budget() {
        let b = Backoff::new();
        for _ in 0..=SPIN_LIMIT {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }

    #[test]
    fn snooze_never_panics_past_budget() {
        let b = Backoff::new();
        for _ in 0..100 {
            b.snooze();
        }
        assert!(b.is_completed());
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(format!("{:?}", Backoff::new()).contains("Backoff"));
    }
}
