//! Umbrella crate for the Citrus reproduction: re-exports every
//! sub-crate so the examples and integration tests have one import root.
//!
//! See the repository README for the full tour. The interesting entry
//! points:
//!
//! * [`citrus::CitrusTree`] — the paper's contribution.
//! * [`citrus_rcu`] — the two user-space RCU implementations.
//! * [`citrus_baselines`] — the five comparison dictionaries.
//! * [`citrus_harness`] — the evaluation harness (Figures 8–10).
//! * [`citrus_serve`] — the batched, backpressured serving layer over
//!   the forest.

#![warn(missing_docs)]

pub use citrus;
pub use citrus_api;
pub use citrus_baselines;
pub use citrus_chaos;
pub use citrus_harness;
pub use citrus_rcu;
pub use citrus_reclaim;
pub use citrus_serve;
pub use citrus_sync;

/// Convenient glob-import surface for examples and tests.
pub mod prelude {
    pub use citrus::{
        even_splitters, CitrusForest, CitrusSession, CitrusTree, ForestSession, GlobalLockRcu,
        ReclaimMode, RouterKind, ScalableRcu,
    };
    pub use citrus_api::{ConcurrentMap, MapSession, OrderedMapSession};
    pub use citrus_baselines::{
        BonsaiTree, LazySkipList, LockFreeBst, OptimisticAvlTree, RelativisticRbTree,
    };
    pub use citrus_rcu::{RcuFlavor, RcuHandle};
    pub use citrus_serve::{Request, Response, ServeConfig, ServeSession, Server, SubmitError};
}
