//! Thread/session churn through the serve boundary (ROADMAP item 4
//! slice): waves of client threads register, hammer the server, and die
//! mid-run — some abandoning tickets they never wait on (a client that
//! disconnects with requests still queued) — while the drain workers'
//! own forest sessions are recycled every few operations (mid-batch,
//! since batches are larger than the recycle period).
//!
//! The invariants: the server never wedges or panics under churn, every
//! acknowledged write survives into the recovered forest (replay check,
//! as in `tests/serve_backpressure.rs`), abandoned tickets are still
//! executed and delivered into their (unobserved) slots without leaking
//! or blocking the drain, and worker-session recycling actually happened.

use citrus_repro::citrus_api::{testkit, ConcurrentMap, MapSession, OrderedMapSession};
use citrus_repro::citrus_serve::{Request, ServeConfig, Server};
use citrus_repro::prelude::*;
use std::collections::BTreeMap;

const WAVES: u64 = 3;
const WRITERS_PER_WAVE: u64 = 3;
const OPS_PER_CLIENT: u64 = 120;
const BLOCK: u64 = 24;

/// One writer client: a short-lived thread with its own session, a
/// private key block (so its acked stream replays to an exact model),
/// and a mixed get/insert/remove/scan workload.
fn writer(server: &Server<u64, u64>, block: u64, seed: u64) -> BTreeMap<u64, u64> {
    let mut session = server.session();
    let mut rng = testkit::SplitMix64::new(seed);
    let mut model = BTreeMap::new();
    let base = block * BLOCK;
    for _ in 0..OPS_PER_CLIENT {
        let key = base + rng.below(BLOCK);
        match rng.below(5) {
            0 | 1 => {
                let value = rng.next_u64();
                if session.insert(key, value) {
                    model.insert(key, value);
                }
            }
            2 => {
                if session.remove(&key) {
                    model.remove(&key);
                }
            }
            3 => {
                // A read of our own block must agree with the model:
                // no other client writes here.
                assert_eq!(session.get(&key), model.get(&key).copied(), "key {key}");
            }
            _ => {
                // Scans cross every client's block; just exercise them.
                let lo = rng.below(WAVES * WRITERS_PER_WAVE * BLOCK);
                let _ = session.range_scan(&lo, &(lo + 16));
            }
        }
    }
    model
}

/// A disconnecting client: submits read requests and drops the tickets
/// without ever waiting — then dies. The worker must still execute and
/// deliver into the abandoned slots.
fn dropper(server: &Server<u64, u64>, seed: u64) {
    let mut rng = testkit::SplitMix64::new(seed);
    for _ in 0..OPS_PER_CLIENT {
        let key = rng.below(WAVES * WRITERS_PER_WAVE * BLOCK);
        let _abandoned = server.submit(Request::Get(key));
    }
}

#[test]
fn client_churn_loses_no_acked_writes() {
    let _watchdog = testkit::stress_watchdog("serve_churn::client_churn");
    // recycle_ops(3) < batch_max(8): worker sessions are recycled in the
    // middle of draining a batch, not just between batches.
    let server: Server<u64, u64> = Server::with_config(
        CitrusForest::with_options(4, 0x5EED, ReclaimMode::Epoch, true),
        ServeConfig::default().with_batch_max(8).with_recycle_ops(3),
    );

    let mut models: Vec<BTreeMap<u64, u64>> = Vec::new();
    for wave in 0..WAVES {
        // Each wave spawns a fresh set of clients and joins them all
        // before the next — registration and death mid-run, repeatedly.
        let wave_models: Vec<BTreeMap<u64, u64>> = std::thread::scope(|scope| {
            let writers: Vec<_> = (0..WRITERS_PER_WAVE)
                .map(|c| {
                    let server = &server;
                    let block = wave * WRITERS_PER_WAVE + c;
                    scope.spawn(move || writer(server, block, 0x5E_6000 + block))
                })
                .collect();
            let dr = {
                let server = &server;
                scope.spawn(move || dropper(server, 0x5E_6F00 + wave))
            };
            dr.join().expect("dropper thread");
            writers
                .into_iter()
                .map(|h| h.join().expect("writer thread"))
                .collect()
        });
        models.extend(wave_models);
    }

    let counters = server.counters();
    assert!(
        counters.recycled_sessions() > 0,
        "recycle_ops=3 over {} executed ops must have recycled worker sessions",
        counters.executed()
    );
    // Every submit was either answered or (dropper reads) at least
    // executed: nothing left behind after drain.
    let accepted = counters.accepted();

    let mut forest = server.into_forest();
    assert_eq!(
        forest.to_vec_quiescent(),
        models
            .into_iter()
            .flatten()
            .collect::<BTreeMap<u64, u64>>()
            .into_iter()
            .collect::<Vec<_>>(),
        "recovered forest must equal the replay of every acked write"
    );
    forest
        .validate_structure()
        .unwrap_or_else(|v| panic!("forest invariant violation after churn: {v:?}"));
    assert!(accepted >= WAVES * (WRITERS_PER_WAVE + 1) * OPS_PER_CLIENT / 2);
}

/// Churn under chaos schedules: the same wave pattern (scaled down) with
/// schedule perturbation installed, swept over `CITRUS_CHAOS_SEEDS`
/// seeds. A no-op without the `chaos` feature; under it, failpoints in
/// the enqueue/drain/shutdown paths get yields and spin-delays injected.
#[test]
fn client_churn_under_chaos_schedules() {
    let _watchdog = testkit::stress_watchdog("serve_churn::chaos_schedules");
    let seeds = match std::env::var("CITRUS_CHAOS_SEEDS") {
        Ok(raw) => raw.trim().parse().unwrap_or_else(|e| {
            panic!("invalid CITRUS_CHAOS_SEEDS={raw:?}: {e} (expected an unsigned integer)")
        }),
        Err(std::env::VarError::NotPresent) => 2,
        Err(e) => panic!("invalid CITRUS_CHAOS_SEEDS: {e}"),
    };
    for i in 0..seeds {
        let seed = 0x5E_7000u64.wrapping_add(i);
        let _chaos = testkit::install_chaos(testkit::ChaosPlan::from_seed(seed));
        let server: Server<u64, u64> = Server::with_config(
            CitrusForest::with_options(2, seed, ReclaimMode::Epoch, false),
            ServeConfig::default().with_batch_max(4).with_recycle_ops(5),
        );
        let model = std::thread::scope(|scope| {
            let w = {
                let server = &server;
                scope.spawn(move || writer(server, 0, seed))
            };
            let d = {
                let server = &server;
                scope.spawn(move || dropper(server, seed ^ 0xD0D))
            };
            d.join().expect("dropper thread");
            w.join().expect("writer thread")
        });
        let mut forest = server.into_forest();
        let expected: Vec<(u64, u64)> = model.into_iter().collect();
        assert_eq!(
            forest.to_vec_quiescent(),
            expected,
            "acked-write replay diverged (seed {seed:#x})"
        );
        forest
            .validate_structure()
            .unwrap_or_else(|v| panic!("forest invariant violation (seed {seed:#x}): {v:?}"));
    }
}
