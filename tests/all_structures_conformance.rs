//! Cross-crate conformance: every dictionary in the repository — Citrus
//! in all flavor/reclamation configurations plus the five baselines —
//! passes the identical correctness battery through the common
//! `ConcurrentMap` trait.

use citrus_repro::citrus_api::testkit;
use citrus_repro::prelude::*;

fn battery<M: ConcurrentMap<u64, u64>>(make: impl Fn() -> M) {
    let ops = testkit::stress_iters(2_000) as usize;
    testkit::check_sequential_model(&make(), stress(5_000), 256, 0xC0DE);
    testkit::check_duplicate_inserts(&make());
    testkit::check_lost_updates(&make(), 6, 250);
    testkit::check_partitioned_determinism(&make(), 6, ops, 64);
    testkit::check_mixed_quiescent_consistency(&make(), 6, ops, 128);
    testkit::check_insert_grants_exclusivity(&make(), 4, stress(150));
}

/// `stress_iters` for `usize`-typed op counts.
fn stress(default: usize) -> usize {
    testkit::stress_iters(default as u64) as usize
}

#[test]
fn citrus_scalable_epoch() {
    let _watchdog = testkit::stress_watchdog("citrus_scalable_epoch");
    battery(|| CitrusTree::<u64, u64, ScalableRcu>::with_reclaim(ReclaimMode::Epoch));
}

#[test]
fn citrus_scalable_leak() {
    let _watchdog = testkit::stress_watchdog("citrus_scalable_leak");
    battery(|| CitrusTree::<u64, u64, ScalableRcu>::with_reclaim(ReclaimMode::Leak));
}

#[test]
fn citrus_global_lock_rcu() {
    let _watchdog = testkit::stress_watchdog("citrus_global_lock_rcu");
    battery(|| CitrusTree::<u64, u64, GlobalLockRcu>::with_reclaim(ReclaimMode::Leak));
}

#[test]
fn baseline_avl() {
    let _watchdog = testkit::stress_watchdog("baseline_avl");
    battery(OptimisticAvlTree::<u64, u64>::new);
}

#[test]
fn baseline_skiplist() {
    let _watchdog = testkit::stress_watchdog("baseline_skiplist");
    battery(LazySkipList::<u64, u64>::new);
}

#[test]
fn baseline_lockfree() {
    let _watchdog = testkit::stress_watchdog("baseline_lockfree");
    battery(LockFreeBst::<u64, u64>::new);
}

#[test]
fn baseline_rbtree() {
    let _watchdog = testkit::stress_watchdog("baseline_rbtree");
    battery(RelativisticRbTree::<u64, u64>::new);
}

#[test]
fn baseline_bonsai() {
    let _watchdog = testkit::stress_watchdog("baseline_bonsai");
    battery(BonsaiTree::<u64, u64>::new);
}
