//! Linearizability over every structure in the repository, checked
//! against *recorded concurrent histories* with the WGL checker
//! (`citrus_api::lincheck`, DESIGN.md §6f) — the machine-checked stand-in
//! for the paper's §4 proof.
//!
//! Each structure runs one direct seeded check plus a chaos-seed sweep
//! (schedule perturbation at every failpoint; a no-op without the `chaos`
//! cargo feature, so this file is green under default features too).
//! Knobs: `CITRUS_LIN_THREADS` / `CITRUS_LIN_OPS` bound history width and
//! length, `CITRUS_CHAOS_SEEDS` the sweep width. Every run dumps its
//! recorded history under `CITRUS_LIN_DUMP_DIR` (default: the OS temp
//! dir) before checking, so even a hung or interrupted run leaves
//! forensic evidence.
//!
//! The checker itself is validated here too: a deliberately broken map
//! whose `get` serves a stale snapshot must be *rejected* with a printed
//! minimal counterexample.

use citrus_repro::citrus_api::{lincheck, testkit, ConcurrentMap, MapSession, OrderedMapSession};
use citrus_repro::prelude::*;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Chaos sweep width, mirroring the chaos_regression convention. A
/// malformed value is a hard error — a typo'd knob must not silently
/// shrink the sweep.
fn seeds_from_env() -> u64 {
    match std::env::var("CITRUS_CHAOS_SEEDS") {
        Ok(raw) => raw.trim().parse().unwrap_or_else(|e| {
            panic!("invalid CITRUS_CHAOS_SEEDS={raw:?}: {e} (expected an unsigned integer)")
        }),
        Err(std::env::VarError::NotPresent) => 2,
        Err(e) => panic!("invalid CITRUS_CHAOS_SEEDS: {e}"),
    }
}

/// One direct check plus a chaos-seed sweep. The key range is kept small
/// so keys are contended (more overlapping per-key subhistories — the
/// interesting case for the checker) while ops-per-key stays bounded.
fn lin_battery<M: ConcurrentMap<u64, u64>>(make: impl Fn() -> M, base_seed: u64) {
    let _watchdog = testkit::stress_watchdog("linearizability::lin_battery");
    let threads = lincheck::lin_threads(4);
    let ops = lincheck::lin_ops(250);
    lincheck::check_linearizable(&make, threads, ops, 32, base_seed);
    lincheck::sweep_lincheck_chaos_seeds(
        &make,
        threads,
        (ops / 2).max(50),
        16,
        base_seed ^ 0xC4A0_5000,
        seeds_from_env(),
    );
}

/// Ordered-read battery: the scan workload mixes `range_scan` /
/// `successor` / `predecessor` with concurrent point updates, then the
/// multi-key WGL checker verifies the whole history. Smaller than
/// `lin_battery` because range components make the checker's state
/// richer.
fn scan_battery<M>(make: impl Fn() -> M, base_seed: u64)
where
    M: ConcurrentMap<u64, u64>,
    for<'a> M::Session<'a>: OrderedMapSession<u64, u64>,
{
    let _watchdog = testkit::stress_watchdog("linearizability::scan_battery");
    let threads = lincheck::lin_threads(3);
    let ops = lincheck::lin_ops(150);
    lincheck::check_linearizable_scans(&make, threads, ops, 16, base_seed);
    lincheck::sweep_lincheck_scan_chaos_seeds(
        &make,
        threads,
        (ops / 2).max(50),
        12,
        base_seed ^ 0x5CA_0000,
        seeds_from_env(),
    );
}

// ---- Citrus: both RCU flavors × both reclamation modes ----------------

#[test]
fn citrus_scalable_epoch() {
    lin_battery(
        || CitrusTree::<u64, u64, ScalableRcu>::with_reclaim(ReclaimMode::Epoch),
        0x11A_0001,
    );
}

#[test]
fn citrus_scalable_leak() {
    lin_battery(
        || CitrusTree::<u64, u64, ScalableRcu>::with_reclaim(ReclaimMode::Leak),
        0x11A_0002,
    );
}

#[test]
fn citrus_global_lock_epoch() {
    lin_battery(
        || CitrusTree::<u64, u64, GlobalLockRcu>::with_reclaim(ReclaimMode::Epoch),
        0x11A_0003,
    );
}

#[test]
fn citrus_global_lock_leak() {
    lin_battery(
        || CitrusTree::<u64, u64, GlobalLockRcu>::with_reclaim(ReclaimMode::Leak),
        0x11A_0004,
    );
}

// ---- CitrusForest: shards 1 / 4 / 8 -----------------------------------

#[test]
fn forest_one_shard() {
    lin_battery(
        || CitrusForest::<u64, u64>::with_env_router(1, 0x5EED, ReclaimMode::Epoch, 32),
        0x11A_0011,
    );
}

#[test]
fn forest_four_shards() {
    lin_battery(
        || CitrusForest::<u64, u64>::with_env_router(4, 0x5EED, ReclaimMode::Epoch, 32),
        0x11A_0014,
    );
}

#[test]
fn forest_eight_shards() {
    lin_battery(
        || CitrusForest::<u64, u64>::with_env_router(8, 0x5EED, ReclaimMode::Epoch, 32),
        0x11A_0018,
    );
}

// ---- The five baselines -----------------------------------------------

#[test]
fn baseline_avl() {
    lin_battery(OptimisticAvlTree::<u64, u64>::new, 0x11A_0021);
}

#[test]
fn baseline_skiplist() {
    lin_battery(LazySkipList::<u64, u64>::new, 0x11A_0022);
}

#[test]
fn baseline_lockfree() {
    lin_battery(LockFreeBst::<u64, u64>::new, 0x11A_0023);
}

#[test]
fn baseline_rbtree() {
    lin_battery(RelativisticRbTree::<u64, u64>::new, 0x11A_0024);
}

#[test]
fn baseline_bonsai() {
    lin_battery(BonsaiTree::<u64, u64>::new, 0x11A_0025);
}

// ---- Ordered reads: Citrus (both flavors, inline + deferred unlink),
// ---- forest fan-out, and the Bonsai snapshot baseline -----------------

#[test]
fn scan_citrus_scalable_inline() {
    scan_battery(
        || CitrusTree::<u64, u64, ScalableRcu>::with_reclaim(ReclaimMode::Epoch),
        0x5CA_0001,
    );
}

#[test]
fn scan_citrus_scalable_deferred() {
    scan_battery(
        || {
            CitrusTree::<u64, u64, ScalableRcu>::with_options(
                ScalableRcu::new(),
                ReclaimMode::Epoch,
                true,
            )
        },
        0x5CA_0002,
    );
}

#[test]
fn scan_citrus_global_lock_inline() {
    scan_battery(
        || CitrusTree::<u64, u64, GlobalLockRcu>::with_reclaim(ReclaimMode::Leak),
        0x5CA_0003,
    );
}

#[test]
fn scan_citrus_global_lock_deferred() {
    scan_battery(
        || {
            CitrusTree::<u64, u64, GlobalLockRcu>::with_options(
                GlobalLockRcu::new(),
                ReclaimMode::Epoch,
                true,
            )
        },
        0x5CA_0004,
    );
}

#[test]
fn scan_forest_one_shard() {
    scan_battery(
        || CitrusForest::<u64, u64>::with_env_router(1, 0x5EED, ReclaimMode::Epoch, 16),
        0x5CA_0011,
    );
}

#[test]
fn scan_forest_four_shards() {
    scan_battery(
        || CitrusForest::<u64, u64>::with_env_router(4, 0x5EED, ReclaimMode::Epoch, 16),
        0x5CA_0014,
    );
}

#[test]
fn scan_forest_eight_shards() {
    scan_battery(
        || CitrusForest::<u64, u64>::with_env_router(8, 0x5EED, ReclaimMode::Epoch, 16),
        0x5CA_0018,
    );
}

/// Explicitly range-routed forest (independent of `CITRUS_ROUTER`): the
/// partial fan-out — scans entering only overlapping shards, directed
/// successor/predecessor probes touching one or two — must still
/// linearize against the multi-key WGL checker. Splitters at 4 and 8 cut
/// the 16-key scan range into three live shards.
#[test]
fn scan_forest_range_router() {
    scan_battery(
        || {
            CitrusForest::<u64, u64>::with_range_router_options(
                vec![4, 8],
                ReclaimMode::Epoch,
                false,
            )
        },
        0x5CA_0019,
    );
}

#[test]
fn scan_bonsai_snapshots() {
    scan_battery(BonsaiTree::<u64, u64>::new, 0x5CA_0025);
}

// ---- Checker validation: the broken adapter must be rejected ----------

/// A deliberately broken map: updates go to the live map, but `get`
/// serves a snapshot frozen at construction time — exactly the stale-read
/// anomaly an unsound RCU traversal could produce, and exactly what the
/// heuristic testkit batteries cannot see (each individual return value
/// is locally plausible).
#[derive(Default, Debug)]
struct StaleReadMap {
    live: Mutex<BTreeMap<u64, u64>>,
    snapshot: Mutex<BTreeMap<u64, u64>>,
}

struct StaleReadSession<'a>(&'a StaleReadMap);

impl ConcurrentMap<u64, u64> for StaleReadMap {
    type Session<'a> = StaleReadSession<'a>;
    const NAME: &'static str = "stale-read-adapter";
    fn session(&self) -> StaleReadSession<'_> {
        StaleReadSession(self)
    }
}

impl MapSession<u64, u64> for StaleReadSession<'_> {
    fn get(&mut self, key: &u64) -> Option<u64> {
        // The lie: reads never see updates.
        self.0.snapshot.lock().unwrap().get(key).copied()
    }
    fn insert(&mut self, key: u64, value: u64) -> bool {
        let mut m = self.0.live.lock().unwrap();
        match m.entry(key) {
            std::collections::btree_map::Entry::Occupied(_) => false,
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(value);
                true
            }
        }
    }
    fn remove(&mut self, key: &u64) -> bool {
        self.0.live.lock().unwrap().remove(key).is_some()
    }
}

/// Single-threaded recording keeps the test fully deterministic: with no
/// concurrency, every interval is totally ordered, so the first
/// `insert(k) → true` followed by `get(k) → None` (without an intervening
/// successful remove) is non-linearizable under *every* schedule.
#[test]
fn stale_read_adapter_is_rejected_with_minimal_counterexample() {
    let outcome = std::panic::catch_unwind(|| {
        lincheck::check_linearizable(StaleReadMap::default, 1, 60, 4, 0xBAD_5EED);
    });
    let payload = outcome.expect_err("the stale-read adapter must be rejected");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "<non-string panic>".into());
    assert!(
        message.contains("non-linearizable history for stale-read-adapter"),
        "unexpected panic message:\n{message}"
    );
    assert!(
        message.contains("minimal non-linearizable sub-history on key"),
        "counterexample must be pretty-printed:\n{message}"
    );
    // The shrinker must reach a small core, not dump the whole workload.
    let ops_line = message
        .lines()
        .find(|l| l.contains("minimal non-linearizable sub-history"))
        .unwrap();
    // Header shape: "... on key(s) K[, K...] (N ops, invocation order):" —
    // the op count lives in the *last* paren group.
    let n_ops: usize = ops_line
        .rsplit('(')
        .next()
        .and_then(|s| s.split(' ').next())
        .and_then(|s| s.parse().ok())
        .expect("counterexample header names its op count");
    assert!(
        n_ops <= 3,
        "counterexample not minimal ({n_ops} ops):\n{message}"
    );

    // Satellite: the failed run must leave a forensic history dump whose
    // path the panic message (and the stress watchdog) can name.
    let dump = lincheck::last_history_dump().expect("a failing lincheck run must dump its history");
    assert!(dump.exists(), "dump file {} missing", dump.display());
    let contents = std::fs::read_to_string(&dump).unwrap();
    assert!(
        contents.contains("insert(") && contents.contains("# VERDICT"),
        "dump must contain the history and the appended verdict:\n{contents}"
    );
    assert!(
        message.contains(&dump.display().to_string()),
        "panic message must name the dump path:\n{message}"
    );
}

/// The same adapter under a *concurrent* recording, via the raw recorder
/// API. The workload is insert/get only: without removes, presence is
/// monotone, so any thread that inserts a key (grant or duplicate) and
/// later gets `None` on it yields a violation under **every** possible
/// interleaving — the rejection is schedule-independent, not luck.
#[test]
fn stale_read_adapter_is_rejected_concurrently() {
    use lincheck::{check_history, History, HistoryRecorder};

    let map = StaleReadMap::default();
    let recorder = HistoryRecorder::new();
    let barrier = std::sync::Barrier::new(4);
    let logs: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4usize)
            .map(|t| {
                let (map, recorder, barrier) = (&map, &recorder, &barrier);
                scope.spawn(move || {
                    let mut session = recorder.wrap(t, map.session());
                    barrier.wait();
                    for i in 0..40u64 {
                        let key = (i + t as u64) % 4;
                        session.insert(key, ((t as u64) << 32) | i);
                        session.get(&key);
                    }
                    session.finish()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let history = History::from_thread_logs(logs);
    let err = check_history(&history)
        .expect_err("a concurrent stale-read history without removes must not linearize");
    assert!(err.keys.iter().all(|&k| k < 4));
    assert!(!err.ops.is_empty());
}
