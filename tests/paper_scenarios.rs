//! End-to-end recreations of the specific hazard scenarios the paper uses
//! to motivate its design (Figures 1, 4 and 5), exercised on every
//! structure where they apply.

use citrus_repro::citrus_api::testkit::{self, SplitMix64};
use citrus_repro::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;

/// Figure 4 — false negatives from successor relocation. A key that is
/// permanently present must never be missed by a concurrent search while
/// a delete relocates it. Each round builds a fresh five-key block whose
/// top key has two children and the block's permanent key (`base+20`) as
/// successor, then deletes the top key — a guaranteed successor move.
fn figure4_no_false_negatives<M: ConcurrentMap<u64, u64>>(map: &M) {
    let rounds = testkit::stress_iters(500);
    let published = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let misses = AtomicU64::new(0);
    let barrier = Barrier::new(3);
    std::thread::scope(|scope| {
        let (map_c, stop_c, barrier_c, published_c) = (&*map, &stop, &barrier, &published);
        scope.spawn(move || {
            let mut s = map_c.session();
            barrier_c.wait();
            for r in 0..rounds {
                let base = r * 100;
                for k in [10, 5, 30, 20, 40] {
                    s.insert(base + k, base + k);
                }
                published_c.store(r + 1, Ordering::Release);
                s.remove(&(base + 10)); // two children; successor base+20 moves
                if r % 16 == 0 {
                    std::thread::yield_now();
                }
            }
            stop_c.store(true, Ordering::Relaxed);
        });
        for t in 0..2u64 {
            let (map_r, stop_r, misses_r, barrier_r, published_r) =
                (&*map, &stop, &misses, &barrier, &published);
            scope.spawn(move || {
                let mut rng = SplitMix64::new(0xF1C4 + t);
                let mut s = map_r.session();
                barrier_r.wait();
                while !stop_r.load(Ordering::Relaxed) {
                    let rounds = published_r.load(Ordering::Acquire);
                    if rounds == 0 {
                        std::thread::yield_now();
                        continue;
                    }
                    let key = rng.below(rounds) * 100 + 20;
                    if s.get(&key) != Some(key) {
                        misses_r.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(
        misses.load(Ordering::Relaxed),
        0,
        "search missed a permanently-present key"
    );
}

#[test]
fn figure4_citrus() {
    let _watchdog = testkit::stress_watchdog("figure4_citrus");
    figure4_no_false_negatives(&CitrusTree::<u64, u64>::new());
    figure4_no_false_negatives(&CitrusTree::<u64, u64, GlobalLockRcu>::new());
}

#[test]
fn figure4_baselines() {
    let _watchdog = testkit::stress_watchdog("figure4_baselines");
    figure4_no_false_negatives(&RelativisticRbTree::<u64, u64>::new());
    figure4_no_false_negatives(&BonsaiTree::<u64, u64>::new());
    figure4_no_false_negatives(&OptimisticAvlTree::<u64, u64>::new());
    figure4_no_false_negatives(&LockFreeBst::<u64, u64>::new());
    figure4_no_false_negatives(&LazySkipList::<u64, u64>::new());
}

/// Figure 5 — an insert whose `prev` is deleted mid-operation must not be
/// lost: tag/marked validation forces a retry.
fn figure5_no_lost_inserts<M: ConcurrentMap<u64, u64>>(map: &M) {
    let rounds = testkit::stress_iters(400);
    let barrier = Barrier::new(2);
    std::thread::scope(|scope| {
        let (map_a, barrier_a) = (&*map, &barrier);
        scope.spawn(move || {
            let mut s = map_a.session();
            barrier_a.wait();
            for r in 0..rounds {
                let parent = r * 10 + 5;
                s.insert(parent, parent);
                s.remove(&parent);
            }
        });
        let (map_b, barrier_b) = (&*map, &barrier);
        scope.spawn(move || {
            let mut s = map_b.session();
            barrier_b.wait();
            for r in 0..rounds {
                let child = r * 10 + 6;
                assert!(s.insert(child, child));
            }
        });
    });
    let mut s = map.session();
    for r in 0..rounds {
        let child = r * 10 + 6;
        assert_eq!(s.get(&child), Some(child), "insert of {child} was lost");
    }
}

#[test]
fn figure5_all_structures() {
    let _watchdog = testkit::stress_watchdog("figure5_all_structures");
    figure5_no_lost_inserts(&CitrusTree::<u64, u64>::new());
    figure5_no_lost_inserts(&OptimisticAvlTree::<u64, u64>::new());
    figure5_no_lost_inserts(&LockFreeBst::<u64, u64>::new());
    figure5_no_lost_inserts(&LazySkipList::<u64, u64>::new());
    figure5_no_lost_inserts(&RelativisticRbTree::<u64, u64>::new());
    figure5_no_lost_inserts(&BonsaiTree::<u64, u64>::new());
}

/// Figure 1's lesson, stated positively: single-key `contains` stays
/// linearizable under concurrent updates (checked via per-key value
/// tagging), which is exactly the operation Citrus chose to support —
/// multi-key snapshots are only offered at quiescence.
#[test]
fn figure1_single_key_reads_are_consistent() {
    let _watchdog = testkit::stress_watchdog("figure1_single_key_reads_are_consistent");
    let tree: CitrusTree<u64, u64> = CitrusTree::new();
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let (t1, stop1) = (&tree, &stop);
        scope.spawn(move || {
            let mut s = t1.session();
            let mut rng = SplitMix64::new(9);
            for _ in 0..testkit::stress_iters(30_000) {
                let k = rng.below(64);
                if rng.below(2) == 0 {
                    s.insert(k, k * 1_000 + 7);
                } else {
                    s.remove(&k);
                }
            }
            stop1.store(true, Ordering::Relaxed);
        });
        for _ in 0..2 {
            let (t2, stop2) = (&tree, &stop);
            scope.spawn(move || {
                let mut s = t2.session();
                let mut rng = SplitMix64::new(11);
                while !stop2.load(Ordering::Relaxed) {
                    let k = rng.below(64);
                    if let Some(v) = s.get(&k) {
                        // A value must always be one that was inserted
                        // under this key — no torn/mixed observations.
                        assert_eq!(v, k * 1_000 + 7, "inconsistent single-key read");
                    }
                }
            });
        }
    });
    // Post-quiescence, a multi-key snapshot is available through the
    // exclusive traversal API.
    let mut tree = tree;
    let snapshot = tree.to_vec_quiescent();
    assert!(snapshot.windows(2).all(|w| w[0].0 < w[1].0));
    tree.validate_structure().unwrap();
}

/// The harness itself is part of the reproduction: a short end-to-end
/// run of every figure definition must produce positive throughput for
/// every series (this is the smoke version of Figures 8–10).
#[test]
fn harness_end_to_end_smoke() {
    let _watchdog = testkit::stress_watchdog("harness_end_to_end_smoke");
    use citrus_repro::citrus_harness::{experiments, BenchConfig};
    let cfg = BenchConfig::smoke();
    let f8 = experiments::fig8(&cfg);
    assert_eq!(f8.series.len(), 3, "two tree flavors plus the forest");
    assert!(f8.series.iter().all(|s| s.points.iter().all(|&p| p > 0.0)));
    for r in experiments::fig9(&cfg) {
        assert!(r.series.iter().all(|s| s.points.iter().all(|&p| p > 0.0)));
    }
    for r in experiments::fig10(&cfg) {
        assert!(r.series.iter().all(|s| s.points.iter().all(|&p| p > 0.0)));
    }
}
