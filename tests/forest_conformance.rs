//! Forest ↔ tree conformance: a [`CitrusForest`] with any shard count
//! must be observationally indistinguishable from a single [`CitrusTree`]
//! oracle, operation for operation, under chaos-schedule perturbation.
//!
//! Each sweep runs `CITRUS_CHAOS_SEEDS` (default 3) consecutive seeds;
//! every seed installs a chaos plan (a no-op without the `chaos` cargo
//! feature, so this file is green under default features too), builds a
//! fresh forest and oracle, and drives both through the same random
//! operation stream via `testkit::check_map_agreement`. Shard counts
//! cover the boundary cases: 1 (degenerate single-tree forest), 3
//! (rounds up to 4 — non-power-of-two request), and 8.
//!
//! The sweeps construct their forests through `with_env_router`, so the
//! whole battery runs against the hash router by default and against the
//! range router when CI's router lane sets `CITRUS_ROUTER=range`. The
//! explicitly range-routed tests at the bottom (splitter boundaries,
//! planted misroutes) run in both lanes regardless.

use citrus_repro::citrus_api::testkit;
use citrus_repro::prelude::*;

/// Seed count, mirroring the chaos_regression sweep convention.
fn seeds_from_env() -> u64 {
    match std::env::var("CITRUS_CHAOS_SEEDS") {
        Ok(raw) => raw.trim().parse().unwrap_or_else(|e| {
            panic!("invalid CITRUS_CHAOS_SEEDS={raw:?}: {e} (expected an unsigned integer)")
        }),
        Err(std::env::VarError::NotPresent) => 3,
        Err(e) => panic!("invalid CITRUS_CHAOS_SEEDS: {e}"),
    }
}

/// Sweeps chaos seeds over forest-vs-oracle agreement for one flavor and
/// shard count. The chaos seed doubles as sharding seed and stream seed,
/// so a failure replays from the one number in the panic message.
fn agreement_sweep<F: RcuFlavor>(shards: usize, base_seed: u64) {
    let _watchdog = testkit::stress_watchdog("forest_conformance::agreement_sweep");
    for i in 0..seeds_from_env() {
        let seed = base_seed.wrapping_add(i);
        let _chaos = testkit::install_chaos(testkit::ChaosPlan::from_seed(seed));
        let forest: CitrusForest<u64, u64, F> =
            CitrusForest::with_env_router(shards, seed, ReclaimMode::Epoch, 128);
        let oracle: CitrusTree<u64, u64, F> = CitrusTree::with_reclaim(ReclaimMode::Epoch);
        testkit::check_map_agreement(&forest, &oracle, 600, 128, seed);

        // The quiescent views must agree too, and the forest must still
        // satisfy every per-shard structural invariant.
        let mut forest = forest;
        let mut oracle = oracle;
        assert_eq!(
            forest.to_vec_quiescent(),
            oracle.to_vec_quiescent(),
            "quiescent contents diverged (seed {seed:#x}, {shards} shards)"
        );
        let stats = forest.validate_structure().unwrap_or_else(|v| {
            panic!("forest invariant violation (seed {seed:#x}, {shards} shards): {v:?}")
        });
        assert_eq!(stats.len, oracle.len_quiescent());

        // Ordered reads must agree too: the forest's k-way merge over
        // per-shard scans must reproduce the oracle's in-order view.
        let mut fs = forest.session();
        let mut os = oracle.session();
        assert_eq!(
            fs.range_scan(&0, &127),
            os.range_scan(&0, &127),
            "full-range scan diverged (seed {seed:#x}, {shards} shards)"
        );
        for probe in [0u64, 31, 64, 97, 127] {
            assert_eq!(
                fs.successor(&probe),
                os.successor(&probe),
                "successor({probe})"
            );
            assert_eq!(
                fs.predecessor(&probe),
                os.predecessor(&probe),
                "predecessor({probe})"
            );
        }
    }
}

#[test]
fn scalable_one_shard_agrees() {
    agreement_sweep::<ScalableRcu>(1, 0xF0_0001);
}

#[test]
fn scalable_three_shards_agrees() {
    agreement_sweep::<ScalableRcu>(3, 0xF0_0003);
}

#[test]
fn scalable_eight_shards_agrees() {
    agreement_sweep::<ScalableRcu>(8, 0xF0_0008);
}

#[test]
fn global_lock_one_shard_agrees() {
    agreement_sweep::<GlobalLockRcu>(1, 0xF1_0001);
}

#[test]
fn global_lock_three_shards_agrees() {
    agreement_sweep::<GlobalLockRcu>(3, 0xF1_0003);
}

#[test]
fn global_lock_eight_shards_agrees() {
    agreement_sweep::<GlobalLockRcu>(8, 0xF1_0008);
}

/// DESIGN.md §6e claims each shard owns a *private* grace-period domain —
/// one shard's `synchronize_rcu` never waits on another shard's readers.
/// This pins that independence directly: a reader sits pinned inside
/// shard 0's read-side critical section for the whole duration of a
/// `synchronize_rcu` on shard 1's domain. If the domains were secretly
/// shared, the synchronize would wait on the pinned reader forever and
/// the stress watchdog would reap the test with exit code 124.
fn shard_grace_periods_are_independent<F: RcuFlavor>(test: &str) {
    use std::sync::atomic::{AtomicBool, Ordering};

    let _watchdog = testkit::stress_watchdog(test);
    let forest: CitrusForest<u64, u64, F> = CitrusForest::with_shards(4);
    let pinned = AtomicBool::new(false);
    let release = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let (forest, pinned, release) = (&forest, &pinned, &release);
        scope.spawn(move || {
            let handle = forest.shard(0).rcu().register();
            let guard = handle.read_lock();
            pinned.store(true, Ordering::Release);
            while !release.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
            drop(guard);
        });
        while !pinned.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        // Reader is inside shard 0's read-side section. Shard 1's grace
        // period must complete anyway.
        let before = forest.shard(1).rcu().grace_periods();
        let handle = forest.shard(1).rcu().register();
        handle.synchronize();
        assert!(
            forest.shard(1).rcu().grace_periods() > before,
            "shard 1 must run its own grace period"
        );
        assert_eq!(
            forest.shard(0).rcu().grace_periods(),
            0,
            "shard 0's domain must not be driven by shard 1's synchronize"
        );
        release.store(true, Ordering::Release);
    });
}

#[test]
fn scalable_shard_grace_periods_are_independent() {
    shard_grace_periods_are_independent::<ScalableRcu>("scalable_shard_gp_independent");
}

#[test]
fn global_lock_shard_grace_periods_are_independent() {
    shard_grace_periods_are_independent::<GlobalLockRcu>("global_lock_shard_gp_independent");
}

#[test]
fn three_shards_rounds_up_to_four() {
    let forest: CitrusForest<u64, u64> = CitrusForest::with_shards(3);
    assert_eq!(forest.shard_count(), 4);
}

#[test]
fn routing_is_a_pure_function_of_the_seed() {
    for seed in [0u64, 1, 0xDEADBEEF, u64::MAX] {
        let a: CitrusForest<u64, u64> = CitrusForest::with_sharding_seed(8, seed);
        let b: CitrusForest<u64, u64> = CitrusForest::with_sharding_seed(8, seed);
        for key in 0u64..2048 {
            assert_eq!(
                a.shard_for(&key),
                b.shard_for(&key),
                "same seed {seed:#x} must route key {key} identically"
            );
        }
    }
}

/// The validator's cross-shard pass has teeth at the conformance level:
/// a key smuggled into a shard the router would never pick (here via
/// direct shard access, standing in for a routing bug) must surface as a
/// `MisroutedKey` — and as `CrossShardDuplicate` once the routed copy
/// exists too, since per-shard BSTs can't see each other's keys.
#[test]
fn validator_catches_cross_shard_leaks() {
    use citrus_repro::citrus::InvariantViolation;

    let mut forest: CitrusForest<u64, u64> = CitrusForest::with_sharding_seed(4, 0x5EED);
    {
        let mut s = forest.session();
        for k in 0u64..64 {
            s.insert(k, k);
        }
    }
    let k = 1_000_001u64;
    let routed = forest.shard_for(&k);
    let wrong = (routed + 1) % forest.shard_count();
    assert!(forest.shard(wrong).session().insert(k, 1));

    match forest.validate_structure() {
        Err(InvariantViolation::MisroutedKey {
            found_in,
            routed_to,
        }) => {
            assert_eq!((found_in, routed_to), (wrong, routed));
        }
        other => panic!("expected MisroutedKey, got {other:?}"),
    }

    // Add the correctly-routed copy: the same key now lives in two
    // shards, which the disjointness pass must flag.
    assert!(forest.shard(routed).session().insert(k, 2));
    match forest.validate_structure() {
        Err(InvariantViolation::CrossShardDuplicate { shards }) => {
            let mut found = [shards.0, shards.1];
            found.sort_unstable();
            let mut expected = [wrong, routed];
            expected.sort_unstable();
            assert_eq!(
                found, expected,
                "duplicate must name the two offending shards"
            );
        }
        other => panic!("expected CrossShardDuplicate, got {other:?}"),
    }

    // Repairing the leak restores a valid forest.
    assert!(forest.shard(wrong).session().remove(&k));
    forest
        .validate_structure()
        .expect("repaired forest validates");
}

/// Router-aware leak detection under range routing: a key planted in a
/// shard whose range does not contain it (direct shard access standing
/// in for a splitter bug) must surface as `MisroutedKey` naming both the
/// offending and the correct shard — the validator consults the actual
/// router, not a hard-coded hash.
#[test]
fn range_router_validator_catches_planted_leaks() {
    use citrus_repro::citrus::InvariantViolation;

    let mut forest: CitrusForest<u64, u64> = CitrusForest::with_range_router(vec![100, 200, 300]);
    {
        let mut s = forest.session();
        for k in (0u64..400).step_by(7) {
            assert!(s.insert(k, k));
        }
    }
    forest
        .validate_structure()
        .expect("honestly routed forest validates");

    // 250 belongs to shard 2 (range [200, 300)); smuggle it into shard 0.
    assert_eq!(forest.shard_for(&250), 2);
    assert!(forest.shard(0).session().insert(250, 1));
    match forest.validate_structure() {
        Err(InvariantViolation::MisroutedKey {
            found_in,
            routed_to,
        }) => {
            assert_eq!((found_in, routed_to), (0, 2));
        }
        other => panic!("expected MisroutedKey, got {other:?}"),
    }

    // Repairing the leak restores a valid forest.
    assert!(forest.shard(0).session().remove(&250));
    forest
        .validate_structure()
        .expect("repaired forest validates");
}

/// Boundary-key battery: keys exactly at the routing boundaries,
/// `u64::MIN`/`u64::MAX`, and spans starting/ending exactly on those
/// boundaries must round-trip identically to a `BTreeMap` oracle.
/// `splitters` names the boundary keys to probe around; it matches the
/// forest's actual splitters in the range-routed run and is just a set of
/// interesting keys in the hash-routed one.
fn boundary_battery(mut forest: CitrusForest<u64, u64>, splitters: &[u64]) {
    use std::collections::BTreeMap;
    use std::ops::Bound;

    let mut keys: Vec<u64> = vec![u64::MIN, 1, u64::MAX - 1, u64::MAX];
    for &s in splitters {
        keys.extend([s - 1, s, s + 1]);
    }
    keys.sort_unstable();
    keys.dedup();

    let mut oracle = BTreeMap::new();
    {
        let mut sess = forest.session();
        for &k in &keys {
            assert!(sess.insert(k, !k), "insert {k}");
            assert!(!sess.insert(k, !k), "duplicate insert {k} must fail");
            oracle.insert(k, !k);
        }
    }
    forest
        .validate_structure()
        .expect("boundary-key forest validates");

    let mut sess = forest.session();
    for &k in &keys {
        assert_eq!(sess.get(&k), Some(!k), "get {k}");
    }

    // Spans whose endpoints sit exactly on routing boundaries, plus the
    // full key space, single-point spans, and an inverted span.
    let mut spans: Vec<(u64, u64)> = vec![(u64::MIN, u64::MAX), (u64::MAX, u64::MIN)];
    for &s in splitters {
        spans.extend([(u64::MIN, s), (s, u64::MAX), (s, s), (s - 1, s + 1)]);
    }
    for w in splitters.windows(2) {
        spans.push((w[0], w[1]));
    }
    for (lo, hi) in spans {
        let want: Vec<(u64, u64)> = if lo <= hi {
            oracle.range(lo..=hi).map(|(&k, &v)| (k, v)).collect()
        } else {
            Vec::new()
        };
        assert_eq!(sess.range_scan(&lo, &hi), want, "range_scan({lo}, {hi})");
    }

    // Directed probes at and around every boundary (strict on both sides).
    for &k in &keys {
        let suc = oracle
            .range((Bound::Excluded(k), Bound::Unbounded))
            .next()
            .map(|(&a, &b)| (a, b));
        assert_eq!(sess.successor(&k), suc, "successor({k})");
        let pred = oracle.range(..k).next_back().map(|(&a, &b)| (a, b));
        assert_eq!(sess.predecessor(&k), pred, "predecessor({k})");
    }
    drop(sess);

    // Draining through fresh sessions exercises the same routing again.
    let mut sess = forest.session();
    for &k in &keys {
        assert!(sess.remove(&k), "remove {k}");
    }
    drop(sess);
    forest
        .validate_structure()
        .expect("drained forest validates");
}

#[test]
fn range_router_boundary_battery() {
    let splitters = vec![100u64, 200, 300];
    boundary_battery(
        CitrusForest::with_range_router(splitters.clone()),
        &splitters,
    );
}

#[test]
fn hash_router_boundary_battery() {
    boundary_battery(
        CitrusForest::with_sharding_seed(4, 0x5EED),
        &[100u64, 200, 300],
    );
}

#[test]
fn range_router_degenerate_single_shard_battery() {
    // An empty splitter list is a legal one-shard forest; the whole
    // battery must still hold with every span handled by shard 0.
    let forest: CitrusForest<u64, u64> = CitrusForest::with_range_router(Vec::new());
    assert_eq!(forest.shard_count(), 1);
    boundary_battery(forest, &[1u64 << 32]);
}

#[test]
fn routed_shard_is_where_the_key_lives() {
    let mut forest: CitrusForest<u64, u64> = CitrusForest::with_sharding_seed(8, 0x5EED);
    {
        let mut s = forest.session();
        for k in 0u64..300 {
            assert!(s.insert(k, k));
        }
    }
    for k in 0u64..300 {
        let routed = forest.shard_for(&k);
        let occupancy = forest.record_occupancy();
        assert_eq!(occupancy.iter().sum::<usize>(), 300);
        // The routed shard must contain the key; sessions re-route
        // deterministically, so removing through a fresh session drains
        // the same shard.
        let before = occupancy[routed];
        assert!(forest.session().remove(&k));
        let after = forest.record_occupancy()[routed];
        assert_eq!(after, before - 1, "key {k} was not in its routed shard");
        assert!(forest.session().insert(k, k));
    }
}
