//! Backpressure and shutdown semantics of `citrus-serve`, pinned by
//! deterministic unit tests: admission control rejects exactly at the
//! high-water mark and returns the request for retry, sessions honor the
//! server's retry-after back-off, graceful shutdown drains every queued
//! request, and — the load-bearing guarantee — **no acknowledged write is
//! ever lost**: everything a client saw acked is present in (or absent
//! from) the forest recovered after shutdown, verified by replaying the
//! acked stream against a model.
//!
//! Determinism comes from `pause()`: with the drain workers parked,
//! queue depths are exact functions of the submits issued, so the
//! high-water tests assert exact rejection points rather than racing the
//! workers.

use citrus_repro::citrus_api::{testkit, ConcurrentMap, MapSession};
use citrus_repro::citrus_serve::{Request, Response, ServeConfig, Server, SubmitError};
use citrus_repro::prelude::*;
use std::collections::BTreeMap;
use std::time::Duration;

fn server_with(config: ServeConfig) -> Server<u64, u64> {
    Server::with_config(
        CitrusForest::with_options(2, 0x5EED, ReclaimMode::Epoch, false),
        config,
    )
}

// ---- Admission control -------------------------------------------------

/// With workers paused, the queue admits exactly `high_water` requests
/// and rejects the next one, reporting the configured retry-after and
/// the observed depth, and handing the request back intact for retry.
#[test]
fn rejects_exactly_at_high_water() {
    let high_water = 3;
    let server = server_with(ServeConfig::default().with_high_water(high_water));
    server.pause();

    // Key 1 pins every submit to one shard, so its depth is exact.
    let shard = server.shard_for(&1);
    for i in 0..high_water {
        let ticket = server
            .submit(Request::Insert(1, i as u64))
            .unwrap_or_else(|_| panic!("submit {i} within high-water must be admitted"));
        assert!(!ticket.is_ready(), "workers are paused");
    }
    assert_eq!(server.queue_len(shard), high_water);

    match server.submit(Request::Insert(1, 99)) {
        Err(SubmitError::Rejected {
            req,
            retry_after,
            depth,
        }) => {
            assert_eq!(req, Request::Insert(1, 99), "request comes back for retry");
            assert_eq!(retry_after, server.config().retry_after);
            assert_eq!(depth, high_water, "rejection reports the full queue");
        }
        other => panic!("expected rejection at high water, got {other:?}"),
    }
    assert_eq!(server.counters().rejected(), 1);
    assert_eq!(server.counters().accepted(), high_water as u64);

    // Draining reopens admission: resume, wait for the queue to empty,
    // and the same submit now succeeds.
    server.resume();
    let ticket = loop {
        match server.submit(Request::Insert(1, 99)) {
            Ok(t) => break t,
            Err(SubmitError::Rejected { retry_after, .. }) => std::thread::sleep(retry_after),
            Err(SubmitError::Closed(_)) => panic!("server closed unexpectedly"),
        }
    };
    // The first paused insert won the key; this one must report a duplicate.
    assert_eq!(ticket.wait(), Response::Flag(false));
}

/// A session-level operation retries through rejection transparently:
/// while the server is saturated it backs off by the server's
/// retry-after, and once capacity frees the operation completes. The
/// session reports how many times it was pushed back.
#[test]
fn session_retries_honor_retry_after() {
    let _watchdog = testkit::stress_watchdog("serve_backpressure::session_retries");
    let server = server_with(
        ServeConfig::default()
            .with_high_water(1)
            .with_retry_after(Duration::from_micros(200)),
    );
    server.pause();
    // Saturate the single admission slot of key 1's shard.
    let filler = server.submit(Request::Get(1)).expect("first submit fits");

    std::thread::scope(|scope| {
        let handle = scope.spawn(|| {
            let mut session = server.session();
            // Blocks in the retry loop until the server drains.
            let fresh = session.insert(1, 7);
            (fresh, session.rejections())
        });
        // Give the session time to hit the full queue at least once,
        // then open the floodgates.
        while server.counters().rejected() == 0 {
            std::thread::yield_now();
        }
        server.resume();
        let (fresh, rejections) = handle.join().expect("session thread");
        assert!(fresh, "insert must eventually land");
        assert!(
            rejections >= 1,
            "the session must have been pushed back at least once"
        );
    });
    assert_eq!(filler.wait(), Response::Value(None));
    assert!(server.counters().rejected() >= 1);
}

// ---- Graceful shutdown -------------------------------------------------

/// Shutdown drains: requests queued behind a paused worker are all
/// executed and answered before the workers exit, and the recovered
/// forest reflects them.
#[test]
fn shutdown_drains_queued_requests() {
    let server = server_with(ServeConfig::default());
    server.pause();
    let tickets: Vec<_> = (0..16u64)
        .map(|k| {
            server
                .submit(Request::Insert(k, k * 10))
                .expect("queue is large enough")
        })
        .collect();
    assert!(tickets.iter().all(|t| !t.is_ready()), "workers are paused");

    // Shutdown resumes paused queues, closes admission, and joins the
    // workers only after every queued request is answered.
    server.shutdown();
    for (k, ticket) in tickets.into_iter().enumerate() {
        assert_eq!(
            ticket.wait(),
            Response::Flag(true),
            "queued insert {k} must be executed during drain"
        );
    }
    assert_eq!(server.counters().acked_writes(), 16);

    match server.submit(Request::Get(1)) {
        Err(SubmitError::Closed(req)) => assert_eq!(req, Request::Get(1)),
        other => panic!("post-shutdown submit must report Closed, got {other:?}"),
    }

    let mut forest = server.into_forest();
    assert_eq!(forest.to_vec_quiescent().len(), 16);
}

/// The zero-acked-write-loss replay check: concurrent clients hammer
/// disjoint key blocks with seeded insert/remove streams while recording
/// every acknowledgment; shutdown races the tail of the traffic; then
/// replaying each client's acked stream against a `BTreeMap` model must
/// reproduce the recovered forest exactly. Disjoint blocks make each
/// client's replay a total order, so the expected final state is exact —
/// any acked-but-dropped write (or dropped-but-acked remove) diverges.
#[test]
fn shutdown_loses_zero_acked_writes() {
    let _watchdog = testkit::stress_watchdog("serve_backpressure::zero_acked_write_loss");
    const CLIENTS: u64 = 4;
    const BLOCK: u64 = 64;
    const OPS: u64 = 400;

    let server = server_with(ServeConfig::default().with_batch_max(4));
    let models: Vec<BTreeMap<u64, u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let server = &server;
                scope.spawn(move || {
                    let mut session = server.session();
                    let mut rng = testkit::SplitMix64::new(0x5E_5000 + c);
                    let mut model = BTreeMap::new();
                    for _ in 0..OPS {
                        let key = c * BLOCK + rng.below(BLOCK);
                        if rng.below(2) == 0 {
                            let value = rng.next_u64();
                            if session.insert(key, value) {
                                model.insert(key, value);
                            }
                        } else if session.remove(&key) {
                            model.remove(&key);
                        }
                    }
                    model
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let total_writes: u64 = server.counters().acked_writes();
    let mut forest = server.into_forest();
    let mut expected: Vec<(u64, u64)> = models.into_iter().flatten().collect();
    expected.sort_unstable();
    assert_eq!(
        forest.to_vec_quiescent(),
        expected,
        "recovered forest must equal the replay of every acked write"
    );
    forest
        .validate_structure()
        .unwrap_or_else(|v| panic!("forest invariant violation after drain: {v:?}"));
    // Sanity: the run actually exercised the write path.
    assert!(total_writes >= CLIENTS * OPS / 4);
}

/// Shutdown is idempotent and `Drop` is safe after it: double shutdown,
/// then drop, without touching the (already recovered) forest.
#[test]
fn shutdown_is_idempotent() {
    let server = server_with(ServeConfig::default());
    {
        let mut session = server.session();
        assert!(session.insert(3, 33));
    }
    server.shutdown();
    server.shutdown();
    drop(server);
}

// ---- Env-derived configuration ----------------------------------------

/// `ServeConfig::from_env` round-trips through the real knobs: a
/// serve-storm run in CI configures admission entirely from the
/// environment, so a misparsed knob must be a hard error, not a default.
#[test]
fn config_from_env_reads_knobs() {
    // Set-and-remove is racy if tests in this binary ran concurrently
    // with other env readers; these names are owned by this test alone.
    std::env::set_var("CITRUS_SERVE_HIGH_WATER", "7");
    std::env::set_var("CITRUS_SERVE_BATCH_MAX", "3");
    std::env::set_var("CITRUS_SERVE_RETRY_AFTER_US", "250");
    let config = ServeConfig::from_env();
    std::env::remove_var("CITRUS_SERVE_HIGH_WATER");
    std::env::remove_var("CITRUS_SERVE_BATCH_MAX");
    std::env::remove_var("CITRUS_SERVE_RETRY_AFTER_US");
    assert_eq!(config.high_water, 7);
    assert_eq!(config.batch_max, 3);
    assert_eq!(config.retry_after, Duration::from_micros(250));
}
