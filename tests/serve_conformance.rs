//! Server ↔ oracle conformance: a `citrus-serve` front end must be
//! observationally indistinguishable from a single [`CitrusTree`] oracle
//! (itself model-checked against `BTreeMap` in `testkit`), operation for
//! operation, with every operation crossing the full submit → queue →
//! batch → response path.
//!
//! The grid covers {hash, range} routers × {inline, deferred} unlink.
//! Each cell runs a seeded agreement stream plus a quiescent audit (the
//! drained forest's contents must equal the oracle's), and chaos-seed
//! sweeps run the whole testkit battery — including the concurrent
//! lost-update and mixed-consistency checks, i.e. concurrent clients —
//! against servers under schedule perturbation at every failpoint
//! (a no-op without the `chaos` cargo feature, so this file is green
//! under default features too). The serve failpoints themselves
//! (`serve/batch/enqueue`, `serve/batch/drain`, `serve/admission/reject`,
//! `serve/shutdown/drain`) are coverage-asserted at the bottom.

use citrus_repro::citrus_api::testkit;
use citrus_repro::citrus_serve::{ServeConfig, Server};
use citrus_repro::prelude::*;

/// Chaos sweep width, mirroring the chaos_regression convention.
fn seeds_from_env() -> u64 {
    match std::env::var("CITRUS_CHAOS_SEEDS") {
        Ok(raw) => raw.trim().parse().unwrap_or_else(|e| {
            panic!("invalid CITRUS_CHAOS_SEEDS={raw:?}: {e} (expected an unsigned integer)")
        }),
        Err(std::env::VarError::NotPresent) => 3,
        Err(e) => panic!("invalid CITRUS_CHAOS_SEEDS: {e}"),
    }
}

/// Small batches + frequent worker-session recycling: one agreement
/// stream then spans many drain cycles and session lifetimes.
fn serve_config() -> ServeConfig {
    ServeConfig::default()
        .with_batch_max(4)
        .with_recycle_ops(96)
}

fn hash_server(deferred: bool, seed: u64) -> Server<u64, u64> {
    Server::with_config(
        CitrusForest::with_options(4, seed, ReclaimMode::Epoch, deferred),
        serve_config(),
    )
}

/// Range-routed over the 128-key agreement range: splitters at 32/64/96
/// give four live shards.
fn range_server(deferred: bool) -> Server<u64, u64> {
    Server::with_config(
        CitrusForest::with_range_router_options(vec![32, 64, 96], ReclaimMode::Epoch, deferred),
        serve_config(),
    )
}

/// One grid cell: seeded agreement stream against a single-tree oracle,
/// then a quiescent audit of the drained forest. The chaos seed doubles
/// as the stream seed, so a failure replays from the one number in the
/// panic message.
fn agreement_sweep(make: impl Fn() -> Server<u64, u64>, base_seed: u64) {
    let _watchdog = testkit::stress_watchdog("serve_conformance::agreement_sweep");
    for i in 0..seeds_from_env() {
        let seed = base_seed.wrapping_add(i);
        let _chaos = testkit::install_chaos(testkit::ChaosPlan::from_seed(seed));
        let server = make();
        let oracle: CitrusTree<u64, u64> = CitrusTree::with_reclaim(ReclaimMode::Epoch);
        testkit::check_map_agreement(&server, &oracle, 600, 128, seed);

        // Quiescent audit: drain the server (graceful shutdown) and the
        // recovered forest must hold exactly the oracle's entries.
        let mut forest = server.into_forest();
        let mut oracle = oracle;
        assert_eq!(
            forest.to_vec_quiescent(),
            oracle.to_vec_quiescent(),
            "drained server contents diverged from oracle (seed {seed:#x})"
        );
        forest
            .validate_structure()
            .unwrap_or_else(|v| panic!("forest invariant violation (seed {seed:#x}): {v:?}"));
    }
}

// ---- Agreement grid: {hash, range} × {inline, deferred} ---------------

#[test]
fn agree_hash_inline() {
    agreement_sweep(|| hash_server(false, 0x5E_4001), 0x5E_4100);
}

#[test]
fn agree_hash_deferred() {
    agreement_sweep(|| hash_server(true, 0x5E_4002), 0x5E_4200);
}

#[test]
fn agree_range_inline() {
    agreement_sweep(|| range_server(false), 0x5E_4300);
}

#[test]
fn agree_range_deferred() {
    agreement_sweep(|| range_server(true), 0x5E_4400);
}

// ---- Chaos-seed sweeps: the full testkit battery (sequential model,
// ---- duplicate inserts, concurrent lost-updates, concurrent mixed
// ---- consistency) through the serve boundary ---------------------------

#[test]
fn chaos_sweep_hash_inline() {
    let _watchdog = testkit::stress_watchdog("serve_conformance::chaos_sweep_hash_inline");
    testkit::sweep_chaos_seeds(
        || hash_server(false, 0x5E_4011),
        0x5E_4500,
        seeds_from_env(),
    );
}

#[test]
fn chaos_sweep_hash_deferred() {
    let _watchdog = testkit::stress_watchdog("serve_conformance::chaos_sweep_hash_deferred");
    testkit::sweep_chaos_seeds(|| hash_server(true, 0x5E_4012), 0x5E_4600, seeds_from_env());
}

#[test]
fn chaos_sweep_range_deferred() {
    let _watchdog = testkit::stress_watchdog("serve_conformance::chaos_sweep_range_deferred");
    testkit::sweep_chaos_seeds(|| range_server(true), 0x5E_4700, seeds_from_env());
}

// ---- Failpoint coverage ------------------------------------------------

/// The serve failpoints must actually exist and fire: after exercising
/// the enqueue, drain, rejection, and shutdown paths, all four names
/// must appear in the chaos registry. A renamed or deleted failpoint
/// fails here instead of silently shrinking every chaos sweep above.
/// Registration is by-reach and only happens in `chaos` builds.
#[cfg(feature = "chaos")]
#[test]
fn serve_failpoints_register() {
    use citrus_repro::citrus_chaos as chaos;
    use citrus_repro::citrus_serve::{Request, SubmitError};

    // Enqueue + drain: a normal round-trip.
    let server: Server<u64, u64> = Server::with_config(
        CitrusForest::with_options(2, 0x5EED, ReclaimMode::Epoch, false),
        ServeConfig::default().with_high_water(1),
    );
    use citrus_repro::citrus_api::MapSession;
    {
        let mut s = server.session();
        assert!(s.insert(1, 10));
        assert_eq!(s.get(&1), Some(10));
    }

    // Admission rejection: pause the workers so the queue cannot drain,
    // then overflow the high-water mark of 1.
    server.pause();
    let shard = server.shard_for(&1);
    let mut fills = 0u64;
    loop {
        match server.submit(Request::Get(1)) {
            Ok(_) => fills += 1,
            Err(SubmitError::Rejected { .. }) => break,
            Err(SubmitError::Closed(_)) => panic!("server closed unexpectedly"),
        }
        assert!(fills < 16, "high-water mark of 1 never rejected");
    }
    assert!(server.queue_len(shard) >= 1);
    server.resume();

    // Shutdown drain.
    server.shutdown();

    let points: Vec<&str> = chaos::all_points().iter().map(|p| p.name).collect();
    for name in [
        "serve/batch/enqueue",
        "serve/batch/drain",
        "serve/admission/reject",
        "serve/shutdown/drain",
    ] {
        assert!(
            points.contains(&name),
            "failpoint {name:?} not registered; reached: {points:?}"
        );
    }
}
