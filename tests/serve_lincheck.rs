//! Linearizability *through the server*: the WGL checker
//! (`citrus_api::lincheck`, DESIGN.md §6f) drives `citrus-serve` sessions
//! whose every operation crosses the full client boundary — submit into a
//! bounded per-shard queue, batch drain by a worker thread, response
//! delivery back through a ticket. A linearizable forest composed with a
//! buggy batching layer is *not* linearizable at this boundary, so these
//! checks cover strictly more than `tests/linearizability.rs` does for
//! the raw structures.
//!
//! The grid covers {hash, range} routers × {inline, deferred} unlink, for
//! both the point-op battery and the ordered-read (scan) battery. The
//! checker itself is validated end-to-end too: a planted mutant that acks
//! a write before applying it (`serve/drain/ack-before-apply`) must be
//! rejected with a dumped minimal counterexample, exactly like the
//! `StaleReadMap` adapter in `tests/linearizability.rs`.
//!
//! Knobs: `CITRUS_LIN_THREADS` / `CITRUS_LIN_OPS` bound history width and
//! length, `CITRUS_CHAOS_SEEDS` the sweep width.

use citrus_repro::citrus_api::{lincheck, testkit, ConcurrentMap, OrderedMapSession};
use citrus_repro::citrus_serve::{ServeConfig, Server};
use citrus_repro::prelude::*;

/// Chaos sweep width, mirroring the chaos_regression convention. A
/// malformed value is a hard error — a typo'd knob must not silently
/// shrink the sweep.
fn seeds_from_env() -> u64 {
    match std::env::var("CITRUS_CHAOS_SEEDS") {
        Ok(raw) => raw.trim().parse().unwrap_or_else(|e| {
            panic!("invalid CITRUS_CHAOS_SEEDS={raw:?}: {e} (expected an unsigned integer)")
        }),
        Err(std::env::VarError::NotPresent) => 2,
        Err(e) => panic!("invalid CITRUS_CHAOS_SEEDS: {e}"),
    }
}

/// A serving config sized for lincheck: tiny batches so a single history
/// spans many drain cycles (the interesting interleavings), and a
/// non-zero recycle period so worker sessions restart mid-history.
fn lincheck_config() -> ServeConfig {
    ServeConfig::default()
        .with_batch_max(4)
        .with_recycle_ops(64)
}

/// A hash-routed server over `shards` shards.
fn hash_server(shards: usize, deferred: bool) -> Server<u64, u64> {
    Server::with_config(
        CitrusForest::with_options(shards, 0x5EED, ReclaimMode::Epoch, deferred),
        lincheck_config(),
    )
}

/// A range-routed server: splitters at 8/16/24 give four shards that
/// cover both the 32-key direct battery and the 16-key sweep range.
fn range_server(deferred: bool) -> Server<u64, u64> {
    Server::with_config(
        CitrusForest::with_range_router_options(vec![8, 16, 24], ReclaimMode::Epoch, deferred),
        lincheck_config(),
    )
}

/// One direct check plus a chaos-seed sweep, as in
/// `tests/linearizability.rs` — every op crossing the serve boundary.
fn lin_battery<M: ConcurrentMap<u64, u64>>(make: impl Fn() -> M, base_seed: u64) {
    let _watchdog = testkit::stress_watchdog("serve_lincheck::lin_battery");
    let threads = lincheck::lin_threads(4);
    let ops = lincheck::lin_ops(250);
    lincheck::check_linearizable(&make, threads, ops, 32, base_seed);
    lincheck::sweep_lincheck_chaos_seeds(
        &make,
        threads,
        (ops / 2).max(50),
        16,
        base_seed ^ 0xC4A0_5000,
        seeds_from_env(),
    );
}

/// Ordered-read battery: scans / successor / predecessor requests ride
/// the same queues as point ops, so a batching bug that reorders a scan
/// against a write shows up here.
fn scan_battery<M>(make: impl Fn() -> M, base_seed: u64)
where
    M: ConcurrentMap<u64, u64>,
    for<'a> M::Session<'a>: OrderedMapSession<u64, u64>,
{
    let _watchdog = testkit::stress_watchdog("serve_lincheck::scan_battery");
    let threads = lincheck::lin_threads(3);
    let ops = lincheck::lin_ops(150);
    lincheck::check_linearizable_scans(&make, threads, ops, 16, base_seed);
    lincheck::sweep_lincheck_scan_chaos_seeds(
        &make,
        threads,
        (ops / 2).max(50),
        12,
        base_seed ^ 0x5CA_0000,
        seeds_from_env(),
    );
}

// ---- Point ops: {hash, range} × {inline, deferred} --------------------

#[test]
fn serve_hash_inline() {
    lin_battery(|| hash_server(4, false), 0x5E_1001);
}

#[test]
fn serve_hash_deferred() {
    lin_battery(|| hash_server(4, true), 0x5E_1002);
}

#[test]
fn serve_range_inline() {
    lin_battery(|| range_server(false), 0x5E_1003);
}

#[test]
fn serve_range_deferred() {
    lin_battery(|| range_server(true), 0x5E_1004);
}

/// Degenerate single-shard server: one worker drains every batch, so
/// per-batch execution order is total — the boundary case where a
/// response-delivery bug is most visible.
#[test]
fn serve_one_shard() {
    lin_battery(|| hash_server(1, false), 0x5E_1005);
}

// ---- Ordered reads: {hash, range} × {inline, deferred} ----------------

#[test]
fn serve_scan_hash_inline() {
    scan_battery(|| hash_server(4, false), 0x5E_2001);
}

#[test]
fn serve_scan_hash_deferred() {
    scan_battery(|| hash_server(4, true), 0x5E_2002);
}

#[test]
fn serve_scan_range_inline() {
    scan_battery(|| range_server(false), 0x5E_2003);
}

#[test]
fn serve_scan_range_deferred() {
    scan_battery(|| range_server(true), 0x5E_2004);
}

// ---- Checker validation: the planted batching mutant ------------------

/// The planted-bug self-test, mirroring `StaleReadMap` in
/// `tests/linearizability.rs` but end-to-end: the
/// `serve/drain/ack-before-apply` mutant makes the drain loop deliver a
/// write's predicted response *before* applying it to the shard (the
/// apply happens only when the next request executes). A client that
/// inserts a key and immediately reads it back sees `insert → true,
/// get → None` — non-linearizable under every schedule — so the WGL
/// checker must reject the server with a dumped minimal counterexample.
///
/// Mutants only exist with the `chaos` cargo feature (`mutant_enabled`
/// is `const false` otherwise), so this test is feature-gated.
#[cfg(feature = "chaos")]
mod planted_mutant {
    use super::*;
    use citrus_repro::citrus_chaos as chaos;
    use citrus_repro::citrus_serve::ServeSession;

    /// Newtype so the checker's panic message names the mutant, not the
    /// healthy server (`NAME` is a const on the map type).
    struct ReorderedAckServe(Server<u64, u64>);

    impl ConcurrentMap<u64, u64> for ReorderedAckServe {
        type Session<'a> = ServeSession<'a, u64, u64>;
        const NAME: &'static str = "serve-reordered-ack";
        fn session(&self) -> Self::Session<'_> {
            self.0.session()
        }
    }

    /// Single shard + single-threaded recording keeps the test fully
    /// deterministic: every interval is totally ordered, so a stashed
    /// write immediately followed by a read of the same key is a
    /// violation under *every* schedule — the rejection is not luck.
    /// (The seed is chosen so the generated stream contains such a
    /// write-then-read pair; the stash applies after the *next* request,
    /// so only an immediately-following read observes the reorder.)
    #[test]
    fn reordered_ack_mutant_is_rejected_with_minimal_counterexample() {
        let _guard = chaos::enable_mutant("serve/drain/ack-before-apply");
        let outcome = std::panic::catch_unwind(|| {
            lincheck::check_linearizable(
                || ReorderedAckServe(hash_server(1, false)),
                1,
                60,
                4,
                0x5E_3001,
            );
        });
        let payload = outcome.expect_err("the reordered-ack mutant must be rejected");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "<non-string panic>".into());
        assert!(
            message.contains("non-linearizable history for serve-reordered-ack"),
            "unexpected panic message:\n{message}"
        );
        assert!(
            message.contains("minimal non-linearizable sub-history on key"),
            "counterexample must be pretty-printed:\n{message}"
        );
        // The shrinker must reach a small core, not dump the whole
        // workload. Header shape: "... on key(s) K[, K...] (N ops,
        // invocation order):" — the op count lives in the last paren
        // group.
        let ops_line = message
            .lines()
            .find(|l| l.contains("minimal non-linearizable sub-history"))
            .unwrap();
        let n_ops: usize = ops_line
            .rsplit('(')
            .next()
            .and_then(|s| s.split(' ').next())
            .and_then(|s| s.parse().ok())
            .expect("counterexample header names its op count");
        assert!(
            n_ops <= 3,
            "counterexample not minimal ({n_ops} ops):\n{message}"
        );

        // The failed run must leave a forensic history dump whose path
        // the panic message names.
        let dump =
            lincheck::last_history_dump().expect("a failing lincheck run must dump its history");
        assert!(dump.exists(), "dump file {} missing", dump.display());
        let contents = std::fs::read_to_string(&dump).unwrap();
        assert!(
            contents.contains("insert(") && contents.contains("# VERDICT"),
            "dump must contain the history and the appended verdict:\n{contents}"
        );
        assert!(
            message.contains(&dump.display().to_string()),
            "panic message must name the dump path:\n{message}"
        );
    }

    /// With the mutant disarmed the very same server passes — the
    /// rejection above is caused by the planted bug, not by the serve
    /// boundary itself.
    #[test]
    fn same_server_passes_without_the_mutant() {
        lincheck::check_linearizable(|| hash_server(1, false), 1, 60, 4, 0x5E_3001);
    }
}
