//! Grace-period sharing, end to end (DESIGN.md §6d): a deterministic,
//! barrier-stepped two-updater schedule over the Citrus tree must produce
//! identical per-operation results and an identical final tree whether
//! `synchronize_rcu` piggybacking is on or off — sharing is invisible at
//! the dictionary API.
//!
//! This file is its own test binary so the environment-knob test below
//! cannot race with domain construction in unrelated tests.

use citrus_repro::citrus_api::testkit::{self, SplitMix64};
use citrus_repro::citrus_rcu::RcuFlavor as Flavor;
use citrus_repro::prelude::*;
use std::sync::Barrier;

const KEYS: u64 = 64;
const STEPS: u64 = 96;

/// Per-lane `(removed, inserted)` outcomes of the schedule.
type LaneResults = Vec<Vec<(bool, bool)>>;

/// Runs the pinned schedule on a tree over `rcu` and returns everything
/// observable: each lane's per-step `(removed, inserted)` results and the
/// final sorted contents.
///
/// Lane 0 works the even keys, lane 1 the odd keys — disjoint, so every
/// operation's outcome is schedule-independent — while a barrier before
/// each step keeps the two synchronize-heavy remove streams genuinely
/// interleaved (two-child deletes call `synchronize_rcu`, which is where
/// a piggybacked return could go wrong). The prefill order is shuffled so
/// the tree is bushy and removes actually hit two-child nodes.
fn run_schedule<F: Flavor>(rcu: F) -> (LaneResults, Vec<(u64, u64)>) {
    let tree = CitrusTree::<u64, u64, F>::with_rcu(rcu, ReclaimMode::Epoch);
    {
        let mut rng = SplitMix64::new(0x9E37_79B9_5EED);
        let mut keys: Vec<u64> = (0..KEYS).collect();
        // Fisher–Yates with the testkit PRNG: same bushy shape every run.
        for i in (1..keys.len()).rev() {
            keys.swap(i, rng.below(i as u64 + 1) as usize);
        }
        let mut s = tree.session();
        for k in keys {
            s.insert(k, k);
        }
    }
    let barrier = Barrier::new(2);
    let results: LaneResults = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2u64)
            .map(|lane| {
                let (tree, barrier) = (&tree, &barrier);
                scope.spawn(move || {
                    let mut s = tree.session();
                    let mut out = Vec::with_capacity(STEPS as usize);
                    for step in 0..STEPS {
                        barrier.wait();
                        let k = (step * 2 + lane) % KEYS;
                        let removed = s.remove(&k);
                        // Fresh key per (lane, step), parity keeps lanes
                        // disjoint here too.
                        let inserted = s.insert(k + KEYS * (step + 1), step);
                        out.push((removed, inserted));
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut tree = tree;
    tree.validate_structure().unwrap();
    (results, tree.to_vec_quiescent())
}

fn shared_and_unshared_agree<F: Flavor, M: Fn(bool) -> F>(make: M) {
    let shared = run_schedule(make(true));
    let unshared = run_schedule(make(false));
    assert_eq!(
        shared.0, unshared.0,
        "per-operation results diverged between sharing modes"
    );
    assert_eq!(
        shared.1, unshared.1,
        "final tree contents diverged between sharing modes"
    );
    // The schedule itself is deterministic, so pin the oracle: every
    // original key is removed on its first visit, every fresh insert
    // succeeds, and only the fresh keys remain.
    for lane in &shared.0 {
        assert!(lane.iter().all(|&(_, inserted)| inserted));
    }
    let removed: usize = shared
        .0
        .iter()
        .flatten()
        .filter(|&&(removed, _)| removed)
        .count();
    assert_eq!(
        removed, KEYS as usize,
        "each original key removed exactly once"
    );
    assert_eq!(shared.1.len(), 2 * STEPS as usize);
    assert!(shared.1.iter().all(|&(k, _)| k >= KEYS));
}

#[test]
fn interleaved_updaters_agree_scalable() {
    let _watchdog = testkit::stress_watchdog("interleaved_updaters_agree_scalable");
    shared_and_unshared_agree(ScalableRcu::with_sharing);
}

#[test]
fn interleaved_updaters_agree_global_lock() {
    let _watchdog = testkit::stress_watchdog("interleaved_updaters_agree_global_lock");
    shared_and_unshared_agree(GlobalLockRcu::with_sharing);
}

/// `CITRUS_RCU_NO_SHARING` reaches domains built after it is set (and
/// only those). Safe here: this binary's other tests construct their
/// domains with `with_sharing`, never from the environment.
#[test]
fn no_sharing_env_knob_reaches_fresh_domains() {
    std::env::set_var("CITRUS_RCU_NO_SHARING", "1");
    let scalable = ScalableRcu::new();
    let global = GlobalLockRcu::new();
    std::env::remove_var("CITRUS_RCU_NO_SHARING");
    assert!(!scalable.sharing());
    assert!(!global.sharing());
    assert!(ScalableRcu::new().sharing());
    assert!(GlobalLockRcu::new().sharing());
}
