//! Pinned chaos schedule seeds, one per structure family, plus a small
//! sweep. Each seed drives `testkit::check_chaos_seed`: with the `chaos`
//! cargo feature the seed deterministically perturbs schedules at every
//! failpoint (yields, spin-delays, forced validation restarts); without it
//! the same battery runs unperturbed, so this file is green under default
//! features too.
//!
//! When a sweep (here or in CI) finds a failing seed, pin it as a one-line
//! test in this file and replay it locally with:
//!
//! ```sh
//! CITRUS_CHAOS_SEEDS=1 cargo test --features chaos --test chaos_regression
//! ```

use citrus_repro::citrus_api::testkit;
use citrus_repro::prelude::*;

// The pinned per-family seeds. Chosen from the initial qualification
// sweep; they exercise every failpoint family without known failures —
// their job is to fail loudly if a future change regresses under the
// exact schedule they encode.

#[test]
fn citrus_scalable_pinned_seed() {
    testkit::check_chaos_seed(
        || CitrusTree::<u64, u64, ScalableRcu>::with_reclaim(ReclaimMode::Epoch),
        0xC17_0501,
    );
}

#[test]
fn citrus_global_lock_pinned_seed() {
    testkit::check_chaos_seed(
        || CitrusTree::<u64, u64, GlobalLockRcu>::with_reclaim(ReclaimMode::Leak),
        0xC17_0502,
    );
}

#[test]
fn avl_pinned_seed() {
    testkit::check_chaos_seed(OptimisticAvlTree::<u64, u64>::new, 0xC17_0503);
}

#[test]
fn skiplist_pinned_seed() {
    testkit::check_chaos_seed(LazySkipList::<u64, u64>::new, 0xC17_0504);
}

#[test]
fn lockfree_pinned_seed() {
    testkit::check_chaos_seed(LockFreeBst::<u64, u64>::new, 0xC17_0505);
}

#[test]
fn rbtree_pinned_seed() {
    testkit::check_chaos_seed(RelativisticRbTree::<u64, u64>::new, 0xC17_0506);
}

#[test]
fn bonsai_pinned_seed() {
    testkit::check_chaos_seed(BonsaiTree::<u64, u64>::new, 0xC17_0507);
}

/// The serve boundary: the whole testkit battery (including the
/// concurrent lost-update and mixed-consistency checks) with every
/// operation crossing a `citrus-serve` submit → batch → response path.
/// Small batches plus a short recycle period keep the worker-side
/// failpoints (`serve/batch/*`, `serve/shutdown/drain`) hot under the
/// pinned schedule.
#[test]
fn serve_pinned_seed() {
    use citrus_repro::citrus_serve::{ServeConfig, Server};
    testkit::check_chaos_seed(
        || {
            Server::with_config(
                CitrusForest::<u64, u64>::with_options(2, 0x5EED, ReclaimMode::Epoch, true),
                ServeConfig::default()
                    .with_batch_max(4)
                    .with_recycle_ops(16),
            )
        },
        0xC17_0510,
    );
}

/// Sweeps `CITRUS_CHAOS_SEEDS` consecutive seeds (default 3) over the
/// Citrus tree; CI's chaos job raises the count. A failing seed prints
/// its replay recipe before re-panicking.
#[test]
fn citrus_seed_sweep_smoke() {
    let count = match std::env::var("CITRUS_CHAOS_SEEDS") {
        Ok(raw) => raw.trim().parse().unwrap_or_else(|e| {
            panic!("invalid CITRUS_CHAOS_SEEDS={raw:?}: {e} (expected an unsigned integer)")
        }),
        Err(std::env::VarError::NotPresent) => 3,
        Err(e) => panic!("invalid CITRUS_CHAOS_SEEDS: {e}"),
    };
    let _watchdog = testkit::stress_watchdog("citrus_seed_sweep_smoke");
    testkit::sweep_chaos_seeds(
        || CitrusTree::<u64, u64, ScalableRcu>::with_reclaim(ReclaimMode::Epoch),
        0x5111_EED0,
        count,
    );
}
