//! All six structures, fed the same deterministic operation stream, must
//! produce identical return values and identical final contents — a
//! differential test that catches semantic drift between implementations.

use citrus_repro::citrus_api::testkit::{self, SplitMix64};
use citrus_repro::prelude::*;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Inserted(bool),
    Removed(bool),
    Got(Option<u64>),
}

fn trace<M: ConcurrentMap<u64, u64>>(map: &M, ops: usize, range: u64, seed: u64) -> Vec<Outcome> {
    let mut rng = SplitMix64::new(seed);
    let mut s = map.session();
    let mut out = Vec::with_capacity(ops + range as usize);
    for _ in 0..ops {
        let k = rng.below(range);
        match rng.below(3) {
            0 => out.push(Outcome::Inserted(s.insert(k, k * 3 + 1))),
            1 => out.push(Outcome::Removed(s.remove(&k))),
            _ => out.push(Outcome::Got(s.get(&k))),
        }
    }
    for k in 0..range {
        out.push(Outcome::Got(s.get(&k)));
    }
    out
}

#[test]
fn identical_traces_across_all_structures() {
    let _watchdog = testkit::stress_watchdog("identical_traces_across_all_structures");
    let ops = testkit::stress_iters(8_000) as usize;
    const RANGE: u64 = 512;
    const SEED: u64 = 0xD1FF;

    let reference = trace(
        &CitrusTree::<u64, u64>::with_reclaim(ReclaimMode::Epoch),
        ops,
        RANGE,
        SEED,
    );

    let citrus_leak = trace(
        &CitrusTree::<u64, u64>::with_reclaim(ReclaimMode::Leak),
        ops,
        RANGE,
        SEED,
    );
    assert_eq!(reference, citrus_leak, "citrus leak-mode diverged");

    let citrus_std = trace(
        &CitrusTree::<u64, u64, GlobalLockRcu>::new(),
        ops,
        RANGE,
        SEED,
    );
    assert_eq!(reference, citrus_std, "citrus global-lock-RCU diverged");

    let avl = trace(&OptimisticAvlTree::<u64, u64>::new(), ops, RANGE, SEED);
    assert_eq!(reference, avl, "AVL diverged");

    let skiplist = trace(&LazySkipList::<u64, u64>::new(), ops, RANGE, SEED);
    assert_eq!(reference, skiplist, "skiplist diverged");

    let lockfree = trace(&LockFreeBst::<u64, u64>::new(), ops, RANGE, SEED);
    assert_eq!(reference, lockfree, "lock-free BST diverged");

    let rbtree = trace(&RelativisticRbTree::<u64, u64>::new(), ops, RANGE, SEED);
    assert_eq!(reference, rbtree, "red-black tree diverged");

    let bonsai = trace(&BonsaiTree::<u64, u64>::new(), ops, RANGE, SEED);
    assert_eq!(reference, bonsai, "bonsai diverged");
}
