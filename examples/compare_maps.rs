//! Head-to-head mini-benchmark of all six dictionaries from the paper's
//! evaluation, on one workload point — a taste of Figure 10 without the
//! full sweep.
//!
//! Run with `cargo run --release --example compare_maps`.
//! Tune with `CITRUS_DURATION_MS`, `CITRUS_THREADS` (first value used).

use citrus_harness::{run_throughput, Algo, BenchConfig, OpMix, WorkloadSpec};
use citrus_repro::prelude::*;

fn main() {
    let cfg = BenchConfig::from_env();
    let threads = cfg.threads.first().copied().unwrap_or(4).max(2);
    let spec = WorkloadSpec::new(
        cfg.range_small,
        OpMix::with_contains(90),
        threads,
        cfg.duration.max(std::time::Duration::from_millis(200)),
    );
    println!(
        "workload: {} threads, 90% contains / 5% insert / 5% delete, key range [0,{}), {:?}\n",
        spec.threads, spec.key_range, spec.duration
    );
    println!("{:<26}{:>14}", "structure", "ops/s");

    // Drive each structure directly through the common trait — the same
    // monomorphized loop the real harness uses.
    let results: Vec<(&str, f64)> = vec![
        (Algo::Citrus.label(), {
            let m: CitrusTree<u64, u64> = CitrusTree::with_reclaim(ReclaimMode::Leak);
            run_throughput(&m, &spec, 1).throughput()
        }),
        (Algo::Avl.label(), {
            let m: OptimisticAvlTree<u64, u64> = OptimisticAvlTree::new();
            run_throughput(&m, &spec, 1).throughput()
        }),
        (Algo::Skiplist.label(), {
            let m: LazySkipList<u64, u64> = LazySkipList::new();
            run_throughput(&m, &spec, 1).throughput()
        }),
        (Algo::LockFree.label(), {
            let m: LockFreeBst<u64, u64> = LockFreeBst::new();
            run_throughput(&m, &spec, 1).throughput()
        }),
        (Algo::Rbtree.label(), {
            let m: RelativisticRbTree<u64, u64> = RelativisticRbTree::new();
            run_throughput(&m, &spec, 1).throughput()
        }),
        (Algo::Bonsai.label(), {
            let m: BonsaiTree<u64, u64> = BonsaiTree::new();
            run_throughput(&m, &spec, 1).throughput()
        }),
    ];

    let best = results.iter().map(|(_, t)| *t).fold(f64::MIN, f64::max);
    for (name, tp) in &results {
        let marker = if (*tp - best).abs() < f64::EPSILON {
            "  ◀ best"
        } else {
            ""
        };
        println!("{name:<26}{tp:>14.0}{marker}");
    }
    println!(
        "\n(one point, short run — run the fig9/fig10 binaries in citrus-bench for\n\
         the full sweeps; CITRUS_PAPER=1 for the paper's parameters)"
    );
}
