//! Quickstart: the Citrus tree as a concurrent dictionary.
//!
//! Run with `cargo run --release --example quickstart`.

use citrus_repro::prelude::*;

fn main() {
    // A Citrus tree over the paper's scalable RCU, with epoch-based
    // reclamation (the safe default).
    let tree: CitrusTree<u64, String> = CitrusTree::new();

    // Threads interact through per-thread sessions.
    {
        let mut session = tree.session();
        assert!(session.insert(1, "one".into()));
        assert!(session.insert(2, "two".into()));
        assert!(!session.insert(1, "uno".into()), "insert never overwrites");
        assert_eq!(session.get(&1).as_deref(), Some("one"));
        assert!(session.remove(&1));
        assert_eq!(session.get(&1), None);
    }

    // Readers are wait-free and run in parallel with updaters.
    std::thread::scope(|s| {
        s.spawn(|| {
            let mut session = tree.session();
            for k in 0..10_000u64 {
                session.insert(k, format!("value-{k}"));
            }
            for k in (0..10_000u64).step_by(2) {
                session.remove(&k);
            }
        });
        for _ in 0..3 {
            s.spawn(|| {
                let mut session = tree.session();
                let mut hits = 0u32;
                for k in 0..10_000u64 {
                    // Wait-free: never blocks, never retries, even while
                    // the updater thread restructures the tree.
                    if session.contains(&k) {
                        hits += 1;
                    }
                }
                println!("reader observed {hits} of 10000 keys (snapshot-dependent)");
            });
        }
    });

    // Exclusive access (no sessions alive) enables iteration and
    // structural checks — concurrent multi-key reads are exactly what
    // RCU with concurrent updaters cannot linearize (paper, Figure 1).
    let mut tree = tree;
    let stats = tree
        .validate_structure()
        .expect("structural invariants hold");
    println!(
        "final tree: {} keys, height {} (internal BST, unbalanced)",
        stats.len, stats.height
    );
    let sum: u64 = {
        let mut acc = 0;
        tree.for_each_quiescent(|k, _v| acc += k);
        acc
    };
    println!("sum of surviving keys: {sum}");

    // The same API runs over the classic global-lock RCU — the
    // configuration whose collapse the paper's Figure 8 shows.
    let std_rcu_tree: CitrusTree<u64, u64, GlobalLockRcu> =
        CitrusTree::with_reclaim(ReclaimMode::Leak);
    let mut session = std_rcu_tree.session();
    session.insert(7, 7);
    assert_eq!(session.get(&7), Some(7));
    println!("global-lock RCU flavor works identically (just slower under update load)");
}
