//! A guided tour of the synchronization that makes Citrus correct:
//!
//! 1. the raw RCU API (read-side sections + `synchronize_rcu`) used for
//!    safe publish-then-free, exactly as in the paper's Figure 2;
//! 2. the paper's Figure 4 hazard — a search missing a key while a
//!    two-child delete relocates its successor — shown to be *prevented*
//!    by the `synchronize_rcu` call on the delete path (line 74).
//!
//! Run with `cargo run --release --example rcu_semantics`.

use citrus_repro::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::time::Duration;

fn part1_grace_periods() {
    println!("-- part 1: the RCU property (Figure 2) --");
    let rcu = ScalableRcu::new();
    let cell = AtomicPtr::new(Box::into_raw(Box::new(1u64)));
    let stop = AtomicBool::new(false);
    let reads = AtomicU64::new(0);

    std::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| {
                let handle = rcu.register();
                while !stop.load(Ordering::Relaxed) {
                    // Read-side critical section: wait-free, reentrant.
                    let _guard = handle.read_lock();
                    let p = cell.load(Ordering::Acquire);
                    // SAFETY: the writer frees old values only after a
                    // grace period, so `p` is alive for this section.
                    let v = unsafe { *p };
                    assert!(v >= 1, "value must never look freed");
                    reads.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        s.spawn(|| {
            let handle = rcu.register();
            for i in 2..=500u64 {
                let fresh = Box::into_raw(Box::new(i));
                let old = cell.swap(fresh, Ordering::AcqRel);
                // Wait until every pre-existing read-side section ends...
                handle.synchronize();
                // ...then freeing the old value cannot race any reader.
                // SAFETY: grace period elapsed; `old` is unreachable.
                unsafe { drop(Box::from_raw(old)) };
            }
            stop.store(true, Ordering::Relaxed);
        });
    });
    println!(
        "   499 publish→synchronize→free cycles, {} concurrent reads, {} grace periods, zero use-after-free",
        reads.load(Ordering::Relaxed),
        rcu.grace_periods()
    );
    // SAFETY: all threads joined.
    unsafe { drop(Box::from_raw(cell.load(Ordering::Relaxed))) };
}

fn part2_figure4() {
    println!("-- part 2: the Figure 4 hazard, defused (tree line 74) --");
    // Each round builds a fresh five-key block
    //
    //          base+10
    //          /     \
    //      base+5   base+30
    //               /     \
    //          base+20   base+40
    //
    // then deletes base+10, which has two children — so its successor,
    // base+20, must be *relocated*. base+20 is never deleted: in a broken
    // implementation a concurrent search could miss it in both its old
    // and new location; Citrus inserts a copy first and synchronizes
    // before unlinking the original.
    const ROUNDS: u64 = 1_000;
    let tree: CitrusTree<u64, u64> = CitrusTree::new();
    let published = AtomicU64::new(0); // rounds whose block is fully built
    let stop = AtomicBool::new(false);
    let misses = AtomicU64::new(0);
    let probes = AtomicU64::new(0);

    std::thread::scope(|s| {
        s.spawn(|| {
            let mut session = tree.session();
            for r in 0..ROUNDS {
                let base = r * 100;
                for k in [10, 5, 30, 20, 40] {
                    session.insert(base + k, base + k);
                }
                published.store(r + 1, Ordering::Release);
                // The interesting delete: two children, successor moves.
                session.remove(&(base + 10));
                if r % 16 == 0 {
                    std::thread::yield_now(); // let searchers run (1-core hosts)
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
        // Searchers probe the permanent key (base+20) of random completed
        // rounds; every miss would be a Figure 4 false negative.
        for t in 0..2u64 {
            let (stop, misses, probes, published) = (&stop, &misses, &probes, &published);
            let tree = &tree;
            s.spawn(move || {
                let mut session = tree.session();
                let mut x = 0x9E37 + t;
                while !stop.load(Ordering::Relaxed) {
                    let rounds = published.load(Ordering::Acquire);
                    if rounds == 0 {
                        std::thread::yield_now();
                        continue;
                    }
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let key = (x >> 33) % rounds * 100 + 20;
                    if session.get(&key) != Some(key) {
                        misses.fetch_add(1, Ordering::Relaxed);
                    }
                    probes.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    println!(
        "   {ROUNDS} successor-moving deletes raced against {} searches for moved keys: {} false negatives",
        probes.load(Ordering::Relaxed),
        misses.load(Ordering::Relaxed)
    );
    assert_eq!(misses.load(Ordering::Relaxed), 0);

    // Every two-child delete waited for one grace period:
    println!(
        "   tree RCU domain completed {} grace periods (≥ one per two-child delete)",
        tree.rcu().grace_periods()
    );
    assert!(tree.rcu().grace_periods() >= ROUNDS);
}

fn main() {
    part1_grace_periods();
    std::thread::sleep(Duration::from_millis(50));
    part2_figure4();
    println!("done.");
}
