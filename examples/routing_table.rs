//! A read-mostly IP routing table — the workload RCU was born for
//! (McKenney's canonical kernel use case, and the 98%-contains regime of
//! the paper's Figure 10).
//!
//! A `CitrusTree` maps /24 IPv4 prefixes to next hops. Many lookup
//! threads resolve addresses continuously (wait-free `contains`), while
//! one control-plane thread applies route flaps (insert/withdraw). The
//! example measures lookup throughput with and without concurrent
//! updates, demonstrating that readers are essentially undisturbed.
//!
//! Run with `cargo run --release --example routing_table`.

use citrus_repro::citrus_api::testkit::SplitMix64;
use citrus_repro::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Routes are keyed by the /24 prefix (upper 24 bits of the address).
fn prefix(addr: u32) -> u64 {
    u64::from(addr >> 8)
}

fn measure_lookups(
    table: &CitrusTree<u64, u32>,
    readers: usize,
    dur: Duration,
    with_updates: bool,
) -> f64 {
    let stop = AtomicBool::new(false);
    let lookups = AtomicU64::new(0);
    std::thread::scope(|s| {
        if with_updates {
            s.spawn(|| {
                // Control plane: flap a block of routes continuously.
                let mut session = table.session();
                let mut rng = SplitMix64::new(0xF1AB);
                while !stop.load(Ordering::Relaxed) {
                    let p = rng.below(1 << 16) | (1 << 20); // a flappy block
                    session.insert(p, 0xDEAD_BEEF);
                    session.remove(&p);
                }
            });
        }
        for t in 0..readers {
            let (stop, lookups) = (&stop, &lookups);
            s.spawn(move || {
                let mut session = table.session();
                let mut rng = SplitMix64::new(t as u64);
                let mut n = 0u64;
                let mut resolved = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let addr = rng.next_u64() as u32;
                    if session.get(&prefix(addr)).is_some() {
                        resolved += 1;
                    }
                    n += 1;
                }
                std::hint::black_box(resolved);
                lookups.fetch_add(n, Ordering::Relaxed);
            });
        }
        std::thread::sleep(dur);
        stop.store(true, Ordering::Relaxed);
    });
    lookups.load(Ordering::Relaxed) as f64 / dur.as_secs_f64()
}

fn main() {
    let table: CitrusTree<u64, u32> = CitrusTree::new();

    // Install a realistic-ish FIB: ~65k /24 routes.
    {
        let mut session = table.session();
        let mut rng = SplitMix64::new(42);
        let mut installed = 0;
        while installed < 65_536 {
            let p = rng.below(1 << 24);
            let next_hop = (rng.next_u64() & 0xFFFF_FFFF) as u32;
            if session.insert(p, next_hop) {
                installed += 1;
            }
        }
    }
    println!("installed 65536 /24 routes");

    let dur = Duration::from_millis(400);
    let start = Instant::now();
    let quiet = measure_lookups(&table, 3, dur, false);
    let flapping = measure_lookups(&table, 3, dur, true);
    println!("lookup throughput, quiet control plane:    {quiet:>12.0} lookups/s");
    println!("lookup throughput, flapping control plane: {flapping:>12.0} lookups/s");
    println!(
        "reader slowdown under route flaps: {:.1}% (RCU readers never block)",
        (1.0 - flapping / quiet) * 100.0
    );
    println!("total example time: {:?}", start.elapsed());

    // Sanity: routes must resolve deterministically once quiescent.
    let mut session = table.session();
    let mut rng = SplitMix64::new(42);
    let p = rng.below(1 << 24);
    assert!(
        session.get(&p).is_some(),
        "first installed route must resolve"
    );
    println!("spot check passed: first installed prefix still resolves");
}
